// The PARDIS wire-constant registry.
//
// Every constant that appears in bytes on the wire — PIOP header flag
// bits, reply status bits, transport handler ids, reserved RTS message
// tags, repository op octets, POA schedule flags, announce frame magic
// — is declared HERE and nowhere else. Scattering them across
// subsystems is how two PRs mint the same bit for different meanings
// and corrupt the protocol silently; a single registry with collision
// static_asserts turns that mistake into a compile error.
//
// Rules (enforced by tools/pardis-lint, code PT002):
//   * a new wire constant is added to this file, in the namespace of
//     the subsystem that owns it (so call sites never churn);
//   * values are never renumbered — golden-bytes tests pin the wire
//     format, and old peers reject unknown values as the documented
//     forward-compat path;
//   * each family carries static_asserts proving its values are
//     pairwise distinct (or bitwise disjoint, for flag bits).
//
// This header is dependency-light on purpose (only common/types.hpp):
// transport/rts/repo/ns headers include it from below, and
// core/protocol.hpp re-exports it from above, without cycles.
#pragma once

#include "common/types.hpp"

// --- RTS reserved message tags ---------------------------------------------
//
// The paper (§2.2): "In order to avoid conflicts, we also require a way
// to distinguish between PARDIS messages and messages pertaining to
// computation in user code (for example through a set of reserved
// message tags)." User code owns [0, kReservedTagBase); PARDIS
// subsystems use fixed tags at or above it.

namespace pardis::rts {

/// First tag reserved for PARDIS-internal traffic.
inline constexpr Tag kReservedTagBase = 0x4000'0000;

/// Wildcards for receive matching (not wire bytes, but part of the tag
/// space contract).
inline constexpr int kAnySource = -1;
inline constexpr Tag kAnyTag = -1;

/// Reserved tags, one per internal protocol.
inline constexpr Tag kTagCollective = kReservedTagBase + 1;
inline constexpr Tag kTagOrbRequest = kReservedTagBase + 2;
inline constexpr Tag kTagOrbReply = kReservedTagBase + 3;
inline constexpr Tag kTagDistTransfer = kReservedTagBase + 4;
inline constexpr Tag kTagDistRedistribute = kReservedTagBase + 5;
inline constexpr Tag kTagPackage = kReservedTagBase + 6;  ///< mini-PSTL / mini-POOMA internals
inline constexpr Tag kTagPoaRound = kReservedTagBase + 7;  ///< POA dispatch schedules
inline constexpr Tag kTagCheck = kReservedTagBase + 8;  ///< pardis_check fingerprints
inline constexpr Tag kTagFtRetry = kReservedTagBase + 9;  ///< pardis_ft retry agreement

// The reserved tags must be a dense run (is_known_reserved_tag checks
// the [kTagCollective, kTagFtRetry] interval) and inside the reserved
// space. Dense + strictly increasing == pairwise distinct.
static_assert(kTagCollective > kReservedTagBase);
static_assert(kTagOrbRequest == kTagCollective + 1);
static_assert(kTagOrbReply == kTagOrbRequest + 1);
static_assert(kTagDistTransfer == kTagOrbReply + 1);
static_assert(kTagDistRedistribute == kTagDistTransfer + 1);
static_assert(kTagPackage == kTagDistRedistribute + 1);
static_assert(kTagPoaRound == kTagPackage + 1);
static_assert(kTagCheck == kTagPoaRound + 1);
static_assert(kTagFtRetry == kTagCheck + 1);
static_assert(kAnyTag < 0 && kAnySource < 0, "wildcards must stay outside the user tag space");

}  // namespace pardis::rts

// --- Transport handler ids -------------------------------------------------

namespace pardis::transport {

using HandlerId = ULong;

/// Handlers the ORB registers on every endpoint.
inline constexpr HandlerId kHandlerOrbRequest = 1;
inline constexpr HandlerId kHandlerOrbReply = 2;
inline constexpr HandlerId kHandlerRepo = 3;
/// Liveness probe: an empty RSR whose only purpose is to exercise the
/// path to a peer. Receivers discard it silently; a probe failure at
/// the sender marks the peer dead (pardis_ft broken-future detection).
inline constexpr HandlerId kHandlerPing = 4;
/// pardis_flow session envelope: a sequence-numbered frame wrapping an
/// inner RSR. Intercepted by the session layer's delivery filter, never
/// seen by ORB handlers.
inline constexpr HandlerId kHandlerSessionData = 5;
/// pardis_flow cumulative acknowledgement for session frames.
inline constexpr HandlerId kHandlerSessionAck = 6;
/// pardis_ns shard-map announcement (simulated multicast): a keyed
/// digest + ShardMap frame fanned out by ns::AnnounceBus so clients
/// discover repositories without PARDIS_REPO_ADDR.
inline constexpr HandlerId kHandlerAnnounce = 7;
/// pardis_wal durable-state transfer: snapshot pulls on replica join
/// and post-commit append forwarding between siblings. Only ever sent
/// between POAs of durable replica groups, so a WAL-disabled run emits
/// no frame with this id.
inline constexpr HandlerId kHandlerStateXfer = 8;
/// Wire-hardening hello: a one-way announcement (magic, protocol
/// version, feature bits) sent once per fresh inter-process connection
/// when PARDIS_WIRE_HELLO is on. A receiver that sees a mismatched
/// magic or version closes the connection — the clean reject for a
/// peer speaking a different protocol. Hello-off runs emit no frame
/// with this id, keeping the wire byte-identical to before.
inline constexpr HandlerId kHandlerHello = 9;
/// pardis_reactor packed wire message: the payload is a run of
/// submessages, each `[u64 dst ep][u32 handler][u32 len][f64 timestamp]`
/// (little-endian subheader of kPackSubheaderSize bytes) followed by
/// `len` payload bytes. Only emitted when PARDIS_REACTOR_PACK is on;
/// pack-off senders never produce the id and their wire stays
/// byte-identical to the classic framing. dst_ep of the outer frame is
/// 0 (transport-level, fan-out happens per submessage). A pre-reactor
/// receiver rejects the unknown id, the documented forward-compat path.
inline constexpr HandlerId kHandlerPack = 10;

/// Bytes of one packed-submessage header inside a kHandlerPack frame.
inline constexpr std::size_t kPackSubheaderSize = 24;

// Handler ids are dense from 1 (dense + increasing == distinct); 0 is
// never assigned — it is the RsrMessage default, and a frame that
// still carries it was never routed.
static_assert(kHandlerOrbRequest == 1);
static_assert(kHandlerOrbReply == kHandlerOrbRequest + 1);
static_assert(kHandlerRepo == kHandlerOrbReply + 1);
static_assert(kHandlerPing == kHandlerRepo + 1);
static_assert(kHandlerSessionData == kHandlerPing + 1);
static_assert(kHandlerSessionAck == kHandlerSessionData + 1);
static_assert(kHandlerAnnounce == kHandlerSessionAck + 1);
static_assert(kHandlerStateXfer == kHandlerAnnounce + 1);
static_assert(kHandlerHello == kHandlerStateXfer + 1);
static_assert(kHandlerPack == kHandlerHello + 1);

// --- Wire-hardening hello frame constants ----------------------------------

/// Leading magic of a kHandlerHello frame ("PHLO").
inline constexpr ULong kHelloMagic = 0x50484C4F;
/// PIOP protocol version announced in the hello; bumped on any
/// incompatible wire change. Peers under a different version are
/// disconnected (the clean reject).
inline constexpr Octet kWireVersion = 1;
/// Hello feature bits: capabilities the sender may exercise. Unknown
/// bits are tolerated (a newer peer may offer more), the documented
/// forward-compat path.
inline constexpr ULong kFeatureFrameCrc = 0x1;  ///< sender can emit CRC-trailed frames
/// Sender may emit kHandlerPack coalesced wire messages
/// (PARDIS_REACTOR_PACK). Informational: the hello is one-way, so the
/// bit announces capability rather than negotiating it.
inline constexpr ULong kFeaturePack = 0x2;

static_assert((kFeatureFrameCrc & kFeaturePack) == 0, "hello feature bits overlap");
static_assert(kHelloMagic != 0, "hello magic must be distinguishable from zeroed bytes");

}  // namespace pardis::transport

// --- PIOP request/reply header bits ----------------------------------------

namespace pardis::core {

/// Request flag bits.
inline constexpr Octet kFlagOneway = 0x1;      ///< no reply expected
inline constexpr Octet kFlagCollective = 0x2;  ///< SPMD collective invocation
inline constexpr Octet kFlagTraced = 0x4;      ///< trace context appended
inline constexpr Octet kFlagDeadline = 0x8;    ///< deadline budget appended
inline constexpr Octet kFlagRetry = 0x10;      ///< re-send of an earlier attempt
/// CRC32 frame trailer appended (wire hardening, PARDIS_FRAME_CRC).
/// The trailer covers every frame byte before it; a CRC-off frame
/// carries neither the bit nor the trailer and stays byte-identical to
/// the pre-hardening wire format.
inline constexpr Octet kFlagCrc = 0x20;

// Flag bits must be bitwise disjoint: OR == sum exactly when no two
// constants share a bit.
static_assert((kFlagOneway | kFlagCollective | kFlagTraced | kFlagDeadline | kFlagRetry |
               kFlagCrc) == kFlagOneway + kFlagCollective + kFlagTraced + kFlagDeadline +
                                kFlagRetry + kFlagCrc,
              "request flag bits overlap");

/// Mask of every assigned request flag bit; strict demarshalling
/// rejects a header carrying any bit outside it.
inline constexpr Octet kKnownRequestFlags =
    kFlagOneway | kFlagCollective | kFlagTraced | kFlagDeadline | kFlagRetry | kFlagCrc;

enum class ReplyStatus : Octet {
  kOk = 0,
  kSystemException = 1,
};

/// High bit of the reply status octet: trace context appended. Reusing
/// the status octet keeps the untraced reply byte-identical to the
/// pre-observability wire format.
inline constexpr Octet kReplyFlagTraced = 0x80;
/// Next status bit down: retry-after hint appended (pardis_flow
/// overload shedding). Only ever set on kOverload error replies, which
/// exist only when admission control is enabled, so a flow-disabled
/// reply stays byte-identical to the pre-flow wire format.
inline constexpr Octet kReplyFlagRetryAfter = 0x40;
/// CRC32 frame trailer appended to the reply (wire hardening,
/// PARDIS_FRAME_CRC). Same contract as kFlagCrc on requests: the
/// trailer covers every preceding frame byte, and a CRC-off reply is
/// byte-identical to the pre-hardening format.
inline constexpr Octet kReplyFlagCrc = 0x20;

// The reply flag bits share one octet with the ReplyStatus value, so
// they must be disjoint from each other AND leave every status value
// untouched.
static_assert((kReplyFlagTraced & kReplyFlagRetryAfter) == 0 &&
                  (kReplyFlagTraced & kReplyFlagCrc) == 0 &&
                  (kReplyFlagRetryAfter & kReplyFlagCrc) == 0,
              "reply flag bits overlap");
static_assert((static_cast<Octet>(ReplyStatus::kOk) &
               (kReplyFlagTraced | kReplyFlagRetryAfter | kReplyFlagCrc)) == 0,
              "ReplyStatus::kOk collides with a reply flag bit");
static_assert((static_cast<Octet>(ReplyStatus::kSystemException) &
               (kReplyFlagTraced | kReplyFlagRetryAfter | kReplyFlagCrc)) == 0,
              "ReplyStatus::kSystemException collides with a reply flag bit");

/// Mask of every assigned reply flag bit (the rest of the status octet
/// is the ReplyStatus value); strict demarshalling rejects a status
/// octet whose flag region carries any other bit.
inline constexpr Octet kKnownReplyFlags = kReplyFlagTraced | kReplyFlagRetryAfter | kReplyFlagCrc;

/// Decode-time sanity bound on SPMD matrix dimensions (client_size,
/// server_size). Not a wire byte: a header claiming a wider matrix
/// than any deployable machine is hostile, and rejecting it before any
/// per-rank allocation is the point.
inline constexpr Long kMaxSpmdWidth = 1 << 20;

/// Per-entry POA schedule flags (internal to the kTagPoaRound channel:
/// rank 0 broadcasts the collective dispatch schedule with one flags
/// octet per entry).
inline constexpr Octet kSchedReplay = 0x1;   ///< duplicate of a dispatched round
inline constexpr Octet kSchedExpired = 0x2;  ///< deadline expired in queue

static_assert((kSchedReplay & kSchedExpired) == 0, "schedule flag bits overlap");

/// Pseudo-operation name in ObjectRef::arg_specs marking a durable
/// (WAL-backed) object. ObjectRef has no trailing-field extension
/// point — a trailer would corrupt ReplicaGroup member-sequence
/// parsing — so durability travels as an arg-spec entry with an empty
/// spec list. The "__pardis." prefix keeps it outside the IDL
/// identifier space; a WAL-off ref never contains it, keeping the
/// marshaled bytes identical to the pre-WAL format.
inline constexpr const char* kDurableMarkerOp = "__pardis.durable__";

}  // namespace pardis::core

// --- Repository wire operations --------------------------------------------

namespace pardis::repo {

/// Repository wire operations (payload of kHandlerRepo RSRs). The
/// replica-group ops (pardis_pool) extend the enum; a frame's op octet
/// leads it, so the pre-pool ops keep their exact wire bytes and an
/// old server simply rejects the new octets.
///
/// pardis_ns extends kRegister/kRegisterReplica with an *optional
/// trailing lease*: a ULong of milliseconds after the ObjectRef. A
/// lease-free frame carries no trailer and is byte-identical to the
/// pre-ns encoding; the server reads the trailer only when bytes
/// remain. kRenewLease is a new op octet (old servers reject it, the
/// documented forward-compat path).
enum class RepoOp : Octet {
  kRegister = 0,
  kLookup = 1,
  kUnregister = 2,
  kList = 3,
  kReply = 4,
  kRegisterReplica = 5,
  kLookupGroup = 6,
  kUnregisterReplica = 7,
  kRenewLease = 8,
};

/// One past the highest assigned op octet; a received op at or above
/// this is rejected as unknown.
inline constexpr Octet kRepoOpEnd = 9;

// Ops are dense from 0 (dense + increasing == distinct).
static_assert(static_cast<Octet>(RepoOp::kRegister) == 0);
static_assert(static_cast<Octet>(RepoOp::kLookup) == 1);
static_assert(static_cast<Octet>(RepoOp::kUnregister) == 2);
static_assert(static_cast<Octet>(RepoOp::kList) == 3);
static_assert(static_cast<Octet>(RepoOp::kReply) == 4);
static_assert(static_cast<Octet>(RepoOp::kRegisterReplica) == 5);
static_assert(static_cast<Octet>(RepoOp::kLookupGroup) == 6);
static_assert(static_cast<Octet>(RepoOp::kUnregisterReplica) == 7);
static_assert(static_cast<Octet>(RepoOp::kRenewLease) == 8);
static_assert(static_cast<Octet>(RepoOp::kRenewLease) + 1 == kRepoOpEnd);

}  // namespace pardis::repo

// --- Announce frame constants ----------------------------------------------

namespace pardis::ns {

/// Leading magic of a shard-map announce frame ("PANS").
inline constexpr ULong kAnnounceMagic = 0x50414E53;
/// Frame format version; bumped on any layout change (receivers under
/// a different version drop the frame silently).
inline constexpr Octet kAnnounceVersion = 1;

static_assert(kAnnounceMagic != 0, "announce magic must be distinguishable from zeroed bytes");

}  // namespace pardis::ns

// --- Write-ahead log constants ---------------------------------------------

namespace pardis::wal {

/// Leading magic of a WAL file ("PWAL"). A file that does not start
/// with it is treated as foreign and recovery refuses to touch it.
inline constexpr ULong kWalMagic = 0x5057414C;
/// On-disk format version; bumped on any record layout change (a log
/// under a different version is recovered as empty, truncated, and
/// restamped with the current version).
inline constexpr Octet kWalVersion = 1;

/// Record type octets (first payload byte after the CRC frame).
inline constexpr Octet kRecordMutation = 1;  ///< one committed non-idempotent dispatch
inline constexpr Octet kRecordSnapshot = 2;  ///< full servant state checkpoint

/// kHandlerStateXfer sub-operations (leading octet of the frame).
inline constexpr Octet kXferRequest = 1;   ///< joiner asks a sibling for a snapshot
inline constexpr Octet kXferSnapshot = 2;  ///< snapshot + durable horizon reply
inline constexpr Octet kXferAppend = 3;    ///< post-commit mutation forwarded to siblings

static_assert(kWalMagic != 0, "wal magic must be distinguishable from zeroed bytes");
static_assert(kRecordMutation != kRecordSnapshot, "wal record types overlap");
static_assert(kXferRequest != kXferSnapshot && kXferSnapshot != kXferAppend &&
                  kXferRequest != kXferAppend,
              "state-xfer sub-ops overlap");

}  // namespace pardis::wal
