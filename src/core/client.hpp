// Client-side ORB machinery: per-thread context, bindings, requests.
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/comm_thread.hpp"
#include "core/orb.hpp"
#include "core/pending_reply.hpp"
#include "core/servant.hpp"
#include "dist/dsequence.hpp"
#include "rts/domain.hpp"

namespace pardis::core {

/// Process-wide default invocation deadline, read once from
/// PARDIS_FT_DEADLINE_MS; zero (no deadline) when unset. New bindings
/// start from this value (Binding::set_deadline overrides per binding).
std::chrono::milliseconds default_invocation_deadline();

/// Per-computing-thread client state: the reply endpoint and the table
/// of in-flight invocations. One per thread of a parallel client; one
/// total for a standalone (single) client.
class ClientCtx {
 public:
  /// SPMD client thread: `dctx` supplies rank/size/communicator; the
  /// host model defaults to the domain's host.
  ClientCtx(Orb& orb, rts::DomainContext& dctx);

  /// Standalone single client.
  explicit ClientCtx(Orb& orb, std::string host_model = "");

  ClientCtx(const ClientCtx&) = delete;
  ClientCtx& operator=(const ClientCtx&) = delete;

  Orb& orb() noexcept { return *orb_; }
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return size_; }
  rts::Communicator* comm() noexcept { return comm_; }
  const std::string& host_model() const noexcept { return host_model_; }
  transport::Endpoint& endpoint() noexcept { return *endpoint_; }

  /// Routes one outgoing request message: directly through the
  /// transport, or via this thread's communication thread when one is
  /// enabled (the paper's §6 proposal — the computing thread is then
  /// not charged for the transfer).
  void send_rsr(const transport::EndpointAddr& dst, transport::HandlerId handler,
                ByteBuffer frame);

  /// Attaches a dedicated communication thread to this client context.
  void enable_comm_thread();
  bool comm_thread_enabled() const noexcept { return sender_ != nullptr; }
  /// Blocks until every asynchronously handed-over send left (no-op
  /// without a communication thread).
  void flush_sends();

  /// Drains the reply endpoint, routing replies to their invocations.
  void pump();

  /// Blocks up to `timeout` for at least one message, then drains.
  /// Returns false on timeout.
  bool pump_blocking(std::chrono::milliseconds timeout);

  void track(const std::shared_ptr<PendingReply>& pending);
  void untrack(RequestId id);

  /// Marks `peer` dead: fails every pending invocation bound to it
  /// with CommFailure so its futures throw instead of blocking.
  void fail_peer(const transport::EndpointAddr& peer, const std::string& why);

  /// Sends a liveness probe (kHandlerPing) to every peer `pending`
  /// depends on; a failed probe marks the peer dead. Called by
  /// PendingReply when a blocking pump window elapses with nothing
  /// delivered — the happy path never probes.
  void probe_peers(PendingReply& pending);

  /// pardis_flow client backpressure: claims one slot of the per-peer
  /// in-flight window (OrbConfig::inflight_window; key = the target
  /// object's rank-0 endpoint). A full window blocks pumping replies or
  /// throws OverloadError per OrbConfig::window_policy; no-op when the
  /// window is disabled. `peers` are probed when a blocking wait stalls
  /// so a dead server breaks the outstanding futures instead of
  /// wedging the window.
  void window_acquire(const std::string& key,
                      const std::vector<transport::EndpointAddr>& peers);
  /// Returns a slot; invoked by the PendingReply holding it when the
  /// invocation completes (or from invoke()'s unwind path).
  void window_release(const std::string& key) noexcept;

  /// Outstanding non-oneway invocations toward `key` (the peer's
  /// rank-0 endpoint string) — the signal behind the pool balancer's
  /// least-inflight policy. Call from the owning thread.
  std::size_t inflight(const std::string& key) const { return window_inflight(key); }

  /// Observer fired from fail_peer() with the dead peer and the
  /// reason; pardis_pool harvests these into per-replica health
  /// scores. Listeners run on the owning thread and must not throw.
  using PeerFailureListener =
      std::function<void(const transport::EndpointAddr& peer, const std::string& why)>;
  void add_peer_failure_listener(PeerFailureListener listener) {
    peer_failure_listeners_.push_back(std::move(listener));
  }

 private:
  void route(transport::RsrMessage&& msg);
  /// Fails the peers of any asynchronous sends the communication
  /// thread reported as failed since the last pump.
  void harvest_send_failures();

  Orb* orb_;
  rts::Communicator* comm_;
  int rank_;
  int size_;
  std::string host_model_;
  std::size_t window_inflight(const std::string& key) const;

  std::shared_ptr<transport::Endpoint> endpoint_;
  std::map<std::uint64_t, std::weak_ptr<PendingReply>> pending_;
  std::unique_ptr<CommSender> sender_;
  /// Outstanding non-oneway invocations per peer key (window_acquire).
  std::map<std::string, int> inflight_;
  std::vector<PeerFailureListener> peer_failure_listeners_;
};

/// One client-side binding between a proxy and an object implementation
/// (paper §3.1). Collective bindings (spmd_bind) represent the whole
/// parallel client as one entity; per-thread bindings (bind) act as
/// separate single clients. The binding is the sequencing domain: the
/// server executes a binding's invocations in order.
class Binding {
 public:
  Binding(ClientCtx& ctx, ObjectRef ref, bool collective, ULongLong id)
      : ctx_(&ctx), ref_(std::move(ref)), collective_(collective), id_(id) {}

  ClientCtx& ctx() noexcept { return *ctx_; }
  const ObjectRef& ref() const noexcept { return ref_; }
  bool collective() const noexcept { return collective_; }
  ULongLong id() const noexcept { return id_; }
  ULong take_seq() noexcept { return next_seq_++; }

  /// Per-invocation time budget applied to every invocation through
  /// this binding; zero (the default unless PARDIS_FT_DEADLINE_MS is
  /// set) means no deadline. Carried on the wire (kFlagDeadline) and
  /// enforced on both sides.
  void set_deadline(std::chrono::milliseconds budget) noexcept { deadline_ = budget; }
  std::chrono::milliseconds deadline() const noexcept { return deadline_; }

  /// Non-null when the collocation bypass applies: the servant for
  /// this thread, to be called directly (paper §4.1: "invocation on a
  /// local object becomes a direct call to the object, bypassing the
  /// network transport").
  ServantBase* collocated_servant() const noexcept { return collocated_; }
  void set_collocated(ServantBase* servant) noexcept { collocated_ = servant; }

  // --- pardis_pool ------------------------------------------------------

  /// Hooks pool::GroupBinding installs so ft::with_retry can fail an
  /// idempotent invocation over to a sibling replica. Without them
  /// (the default) the binding behaves exactly as before.
  struct PoolHooks {
    /// Fired after an agreed retryable-failure verdict with the
    /// dominant error code, the diagnostic, and the server retry-after
    /// hint (ms, 0 = none). Returns true when the binding was
    /// retargeted at a sibling — the caller then restarts with a fresh
    /// request identity (attempt 1) instead of re-sending the old one.
    std::function<bool(ErrorCode code, const std::string& why, unsigned retry_after_ms)>
        on_failure;
    /// Fired when an invocation completes (replica health recovery).
    std::function<void()> on_success;
  };
  void set_pool_hooks(PoolHooks hooks) { pool_hooks_ = std::move(hooks); }
  bool pool_failover(ErrorCode code, const std::string& why, unsigned retry_after_ms) {
    return pool_hooks_.on_failure ? pool_hooks_.on_failure(code, why, retry_after_ms)
                                  : false;
  }
  void pool_success() {
    if (pool_hooks_.on_success) pool_hooks_.on_success();
  }

  /// Swaps the binding onto another replica. Each (id, next_seq) pair
  /// is a sequencing domain on one server: the pool keeps one per
  /// replica and restores it here, so every server still sees dense
  /// sequence numbers. Clears the collocation bypass (pool targets
  /// are treated as remote).
  void retarget(ObjectRef ref, ULongLong id, ULong next_seq) {
    ref_ = std::move(ref);
    id_ = id;
    next_seq_ = next_seq;
    collocated_ = nullptr;
  }
  /// The next sequence number take_seq() would hand out (pool target
  /// bookkeeping).
  ULong next_seq() const noexcept { return next_seq_; }

  /// pardis_wal: set by the pool when the target object is durable
  /// (WAL-backed). Failover then keeps the request identity — the
  /// retry re-sends the same (binding id, seq, request id) to the
  /// sibling, which either answers from its log (the mutation
  /// committed) or executes it exactly once.
  void set_exactly_once(bool on) noexcept { exactly_once_ = on; }
  bool exactly_once() const noexcept { return exactly_once_; }

 private:
  ClientCtx* ctx_;
  ObjectRef ref_;
  bool collective_;
  ULongLong id_;
  ULong next_seq_ = 0;
  std::chrono::milliseconds deadline_ = default_invocation_deadline();
  ServantBase* collocated_ = nullptr;
  PoolHooks pool_hooks_;
  bool exactly_once_ = false;
};

using BindingPtr = std::shared_ptr<Binding>;

/// Base of every generated proxy class: holds the binding.
class ProxyRoot {
 public:
  explicit ProxyRoot(BindingPtr binding) : binding_(std::move(binding)) {}
  virtual ~ProxyRoot() = default;

  const BindingPtr& _binding() const noexcept { return binding_; }

 protected:
  BindingPtr binding_;
};

/// Per-thread binding (paper: `bind` — "creates one binding per
/// thread"; operations may not use distributed arguments).
BindingPtr bind(ClientCtx& ctx, const std::string& name, const std::string& host,
                const std::string& expected_type);

/// Collective binding (paper: `spmd_bind` — "represents the parallel
/// client to the ORB as one entity"); must be called by every thread
/// of the client domain.
BindingPtr spmd_bind(ClientCtx& ctx, const std::string& name, const std::string& host,
                     const std::string& expected_type);

/// Binds directly to a reference (e.g. one received through
/// object_to_string / string_to_object), bypassing the repository.
BindingPtr bind_object(ClientCtx& ctx, const ObjectRef& ref,
                       const std::string& expected_type);

/// Collective variant of bind_object; every thread passes the same
/// reference.
BindingPtr spmd_bind_object(ClientCtx& ctx, const ObjectRef& ref,
                            const std::string& expected_type);

/// Builder for one invocation; generated stubs marshal arguments in
/// IDL order and then call invoke().
class ClientRequest {
 public:
  ClientRequest(Binding& binding, std::string operation, bool oneway, bool has_dist_out);

  /// Non-distributed in/inout argument (marshaled into every request
  /// message so each server thread can advance its cursors).
  template <typename T>
  void in_value(const T& v) {
    for (auto& w : writers_) CdrTraits<T>::marshal(w, v);
  }

  /// Distributed in argument: this client thread's pieces, routed to
  /// the server threads that own them under the registered server-side
  /// distribution spec — the direct, parallel transfer path.
  template <typename T>
  void in_dseq(const dist::DSequence<T>& seq) {
    const DistSpec spec = binding_->ref().spec_for(operation_, next_dseq_index_++);
    const std::size_t n = seq.size();
    const dist::Distribution& d_client = seq.distribution();
    const dist::Distribution d_server = spec.instantiate(n, server_size());
    dist::TransferPlan plan(d_client, d_server);
    const int me = my_client_rank();
    std::size_t my_elements = 0;
    for (int q = 0; q < server_size(); ++q) {
      CdrWriter& w = writers_[q];
      w.write_ulonglong(n);
      d_client.marshal(w);
      for (const dist::TransferPiece& piece : plan.pieces()) {
        if (piece.src_rank != me || piece.dst_rank != q) continue;
        seq.encode_range(piece.span, w);
        my_elements += piece.span.size();
      }
    }
    if (obs::enabled()) {
      static obs::Counter& transferred = obs::metrics().counter("dist.transfer_elements");
      transferred.add(my_elements);
    }
  }

  /// Declares the client-side distribution expected for the next
  /// distributed out argument (paper: "the client can set the
  /// distribution of the expected 'out' arguments before making an
  /// invocation").
  void out_dseq_expected(const dist::Distribution& d) {
    next_dseq_index_++;  // out args consume a spec slot on the server side
    for (auto& w : writers_) d.marshal(w);
  }

  int server_size() const noexcept { return binding_->ref().server_size(); }

  /// Sends one request message per server thread. Returns the pending
  /// reply to hang futures on (nullptr for oneway operations).
  ///
  /// `attempt` >= 2 re-sends the same request (same request_id and
  /// seq_no, kFlagRetry on the wire) for the coordinated retry of an
  /// idempotent operation: the marshaled bodies are reusable, the POA
  /// deduplicates bodies it already has, and a replayed dispatch is
  /// explicitly allowed for retry-flagged sequence numbers — so a
  /// partially-sent P×Q matrix is completed, never torn.
  std::shared_ptr<PendingReply> invoke(int attempt = 1);

 private:
  int my_client_rank() const noexcept;

  Binding* binding_;
  std::string operation_;
  bool oneway_;
  bool has_dist_out_;
  std::vector<ByteBuffer> bodies_;
  std::vector<CdrWriter> writers_;
  std::size_t next_dseq_index_ = 0;
  RequestId issued_id_;
  ULong issued_seq_ = 0;
};

}  // namespace pardis::core
