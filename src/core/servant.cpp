#include "core/servant.hpp"

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::core {

ServerInvocation::ServerInvocation(const ObjectRef& ref, rts::Communicator* comm,
                                   int server_rank, int server_size,
                                   const RequestHeader& header, std::vector<Body> bodies,
                                   ReplySender send)
    : ref_(&ref),
      comm_(comm),
      server_rank_(server_rank),
      server_size_(server_size),
      header_(header),
      bodies_(std::move(bodies)),
      send_(std::move(send)) {
  readers_.reserve(bodies_.size());
  reply_bodies_.resize(bodies_.size());
  reply_writers_.reserve(bodies_.size());
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    readers_.emplace_back(bodies_[i].bytes.view(), bodies_[i].little);
    reply_writers_.emplace_back(reply_bodies_[i]);
  }
}

rts::Communicator& ServerInvocation::comm() const {
  if (comm_ == nullptr)
    throw BadInvOrder("distributed arguments require an SPMD server domain");
  return *comm_;
}

ByteBuffer ServerInvocation::frame_reply(std::size_t body_index, ReplyStatus status,
                                         ErrorCode code, const std::string& message,
                                         ByteBuffer body) {
  ReplyHeader h;
  h.request_id = bodies_[body_index].request_id;
  h.server_rank = server_rank_;
  h.server_size = server_size_;
  h.status = status;
  h.error_code = code;
  h.error_message = message;
  h.trace = trace_;
  h.crc = wire::frame_crc();
  ByteBuffer frame;
  CdrWriter w(frame);
  h.marshal(w);
  frame.append(body.view());
  if (h.crc) wire::append_crc(frame);
  return frame;
}

void ServerInvocation::send_reply_to(std::size_t body_index, ReplyStatus status, ErrorCode code,
                                     const std::string& message, ByteBuffer body) {
  ByteBuffer frame = frame_reply(body_index, status, code, message, std::move(body));
  if (obs::enabled()) {
    static obs::Counter& replies = obs::metrics().counter("orb.replies_sent");
    static obs::Counter& bytes = obs::metrics().counter("orb.reply_bytes_sent");
    replies.add(1);
    bytes.add(frame.size());
  }
  send_(bodies_[body_index].reply_to, std::move(frame));
}

std::vector<ServerInvocation::BuiltReply> ServerInvocation::build_replies() {
  std::vector<BuiltReply> built;
  if (oneway()) return built;
  // Without distributed out arguments only server rank 0 replies; the
  // client-side stub waits for exactly one reply in that case.
  if (server_rank_ != 0 && !sent_dist_out_) return built;
  built.reserve(bodies_.size());
  for (std::size_t i = 0; i < bodies_.size(); ++i)
    built.push_back(BuiltReply{bodies_[i].client_rank, bodies_[i].reply_to,
                               frame_reply(i, ReplyStatus::kOk, ErrorCode::kUnknown, "",
                                           std::move(reply_bodies_[i]))});
  return built;
}

void ServerInvocation::send_built(std::vector<BuiltReply> replies) {
  // The reply span sits under the dispatch span (ambient here) so the
  // transport sends it triggers nest correctly in the trace.
  obs::SpanScope span;
  if (obs::enabled() && trace_.valid())
    span.open("reply:" + operation(), "server");
  for (auto& r : replies) {
    if (obs::enabled()) {
      static obs::Counter& replies_sent = obs::metrics().counter("orb.replies_sent");
      static obs::Counter& bytes = obs::metrics().counter("orb.reply_bytes_sent");
      replies_sent.add(1);
      bytes.add(r.frame.size());
    }
    send_(r.to, std::move(r.frame));
  }
}

void ServerInvocation::send_replies() { send_built(build_replies()); }

void ServerInvocation::send_error(const SystemException& e) {
  if (oneway()) {
    PARDIS_LOG(kWarn, "poa") << "oneway " << operation() << " failed: " << e.what();
    return;
  }
  for (std::size_t i = 0; i < bodies_.size(); ++i)
    send_reply_to(i, ReplyStatus::kSystemException, e.code(), e.what(), ByteBuffer{});
}

}  // namespace pardis::core
