// Stringified object references, CORBA's object_to_string /
// string_to_object: a reference (including every thread endpoint and
// the registered distribution specs) round-trips through a printable
// "IOR:<hex>" string, so references can travel through files,
// command lines and environment variables between metaapplication
// components that share no repository.
#pragma once

#include <string>

#include "core/object_ref.hpp"

namespace pardis::core {

/// "IOR:" followed by the hex-encoded CDR form of the reference.
std::string object_to_string(const ObjectRef& ref);

/// Inverse of object_to_string; throws BadParam on malformed input and
/// MarshalError on a corrupt payload.
ObjectRef string_to_object(const std::string& ior);

}  // namespace pardis::core
