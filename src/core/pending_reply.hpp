// Client-side record of one in-flight invocation.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "dist/dsequence.hpp"

namespace pardis::core {

class ClientCtx;

/// Cursor view over the reply bodies of one completed invocation, used
/// by generated stub decoders. Decode calls must mirror the skeleton's
/// reply-marshal order.
class ReplyDecoder {
 public:
  struct BodyView {
    int server_rank;
    CdrReader reader;
  };

  explicit ReplyDecoder(std::vector<BodyView> bodies) : bodies_(std::move(bodies)) {}

  /// Non-distributed result/out argument (carried by server rank 0).
  template <typename T>
  T out_value() {
    for (auto& b : bodies_)
      if (b.server_rank == 0) {
        T v;
        CdrTraits<T>::unmarshal(b.reader, v);
        return v;
      }
    throw MarshalError("ReplyDecoder: no server rank 0 reply body");
  }

  /// Distributed out argument: decodes the explicit-span pieces from
  /// every reply into this client thread's local part of `target`.
  template <typename T>
  void out_dseq(dist::DSequence<T>& target) {
    for (auto& b : bodies_) {
      const ULong count = b.reader.read_ulong();
      for (ULong i = 0; i < count; ++i) {
        const ULongLong begin = b.reader.read_ulonglong();
        const ULongLong end = b.reader.read_ulonglong();
        target.decode_range({begin, end}, b.reader);
      }
    }
  }

 private:
  std::vector<BodyView> bodies_;
};

/// Shared state between the futures of one invocation and the client
/// engine routing its replies. Accessed only from the owning client
/// thread (NexusLite-style single-threaded delivery).
class PendingReply {
 public:
  /// `expected` is the number of replies to wait for: the server's
  /// thread count when the operation has distributed out arguments,
  /// otherwise 1 (only server rank 0 replies).
  PendingReply(ClientCtx& ctx, RequestId id, int expected);
  ~PendingReply();

  RequestId id() const noexcept { return id_; }

  /// Runs once when all replies are in (set by the stub).
  void set_decoder(std::function<void(ReplyDecoder&)> decoder) {
    decoder_ = std::move(decoder);
  }

  /// Observability wiring (set by ClientRequest::invoke): the
  /// invocation span this reply resolves under, and the operation name
  /// for the resolve span and failure messages.
  void set_trace(const obs::TraceContext& trace, const std::string& operation);

  /// Invocation time budget, measured from this call: wait() and
  /// resolved() move the reply to the terminal failed state (kTimeout)
  /// once it elapses instead of blocking forever.
  void set_deadline(std::chrono::milliseconds budget);

  /// The server endpoints this invocation depends on. When a blocking
  /// wait times out with nothing delivered, the client engine probes
  /// them and fails the reply if one is unreachable (broken futures
  /// instead of a hang).
  void set_peers(std::vector<transport::EndpointAddr> peers) {
    peers_ = std::move(peers);
  }
  const std::vector<transport::EndpointAddr>& peers() const noexcept { return peers_; }

  /// pardis_flow: hook returning this invocation's in-flight window
  /// slot. Fired exactly once, at the earlier of completion (full
  /// delivery, error reply, or local failure) and destruction.
  void set_release(std::function<void()> release) { release_ = std::move(release); }

  /// Terminal local failure (expired deadline, severed peer, failed
  /// send): every future of this invocation then throws the matching
  /// typed exception. The first failure — local or a delivered error
  /// reply — wins; later calls are ignored.
  void fail(ErrorCode code, std::string message);
  bool failed() const noexcept { return failed_.has_value(); }

  /// Non-blocking: pumps the client engine; true once complete (the
  /// decoder has run). Throws the server's exception on failure.
  bool resolved();

  /// Blocking completion.
  void wait();

  /// Engine delivery path. Duplicate replies (an injected duplicate or
  /// a replayed idempotent dispatch) are dropped by server rank.
  void deliver(const ReplyHeader& header, bool little, ByteBuffer body);
  bool complete() const noexcept {
    return failed_.has_value() || error_.has_value() || received_ >= expected_;
  }

 private:
  void finish();
  /// Fails the reply with kTimeout once the deadline passed; returns
  /// true when the reply is (now) failed.
  bool deadline_expired();
  /// Fires the release hook (once).
  void maybe_release() noexcept;

  ClientCtx* ctx_;
  RequestId id_;
  int expected_;
  int received_ = 0;
  struct RawBody {
    int server_rank;
    bool little;
    ByteBuffer bytes;
  };
  std::vector<RawBody> bodies_;
  std::optional<ReplyHeader> error_;
  std::optional<std::pair<ErrorCode, std::string>> failed_;
  std::vector<transport::EndpointAddr> peers_;
  std::chrono::steady_clock::time_point deadline_{};
  std::chrono::milliseconds deadline_budget_{0};
  bool has_deadline_ = false;
  std::function<void(ReplyDecoder&)> decoder_;
  std::function<void()> release_;
  bool decoded_ = false;
  obs::TraceContext trace_;
  std::string operation_;
  double issue_wall_us_ = 0.0;
};

}  // namespace pardis::core
