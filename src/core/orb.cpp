#include "core/orb.hpp"

#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::core {

Orb::~Orb() {
  if (obs::enabled()) obs::flush_exports();
}

ObjectRef Orb::resolve(const std::string& name, const std::string& host,
                       std::chrono::milliseconds timeout) {
  if (obs::enabled()) {
    static obs::Counter& resolves = obs::metrics().counter("orb.resolves");
    resolves.add(1);
  }
  if (auto ref = registry_->lookup(name, host)) return *ref;

  bool activating = false;
  if (activator_) {
    PARDIS_LOG(kInfo, "orb") << "object " << name << "@" << host
                             << " not registered, trying activation";
    activating = activator_(name, host);
  }
  if (activating) {
    // The activation agent starts the server asynchronously; poll the
    // registry until the object registers itself or we give up.
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (auto ref = registry_->lookup(name, host)) return *ref;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  throw ObjectNotExist("no object named '" + name + "' on host '" + host + "'");
}

void Orb::register_servants(const ObjectRef& ref, std::vector<ServantBase*> per_rank,
                            const void* group) {
  if (per_rank.empty()) throw BadParam("register_servants: no servants");
  std::lock_guard<std::mutex> lock(mutex_);
  servants_[ref.object_id] = CollocatedEntry{std::move(per_rank), group, ref.spmd};
}

void Orb::unregister_servants(const ObjectId& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  servants_.erase(id);
}

const Orb::CollocatedEntry* Orb::collocated(const ObjectId& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = servants_.find(id);
  return it != servants_.end() ? &it->second : nullptr;
}

}  // namespace pardis::core
