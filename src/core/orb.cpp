#include "core/orb.hpp"

#include <cstdlib>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::core {

OrbConfig OrbConfig::from_env() {
  static const OrbConfig cached = [] {
    OrbConfig c;
    if (const char* v = std::getenv("PARDIS_RESOLVE_TIMEOUT_MS")) {
      const long ms = std::strtol(v, nullptr, 10);
      if (ms >= 0) c.resolve_timeout = std::chrono::milliseconds(ms);
    }
    if (const char* v = std::getenv("PARDIS_POA_HIGH_WATERMARK")) {
      const long n = std::strtol(v, nullptr, 10);
      if (n >= 0) c.poa_high_watermark = static_cast<std::size_t>(n);
    }
    if (const char* v = std::getenv("PARDIS_POA_LOW_WATERMARK")) {
      const long n = std::strtol(v, nullptr, 10);
      if (n >= 0) c.poa_low_watermark = static_cast<std::size_t>(n);
    }
    if (const char* v = std::getenv("PARDIS_OVERLOAD_RETRY_AFTER_MS")) {
      const long ms = std::strtol(v, nullptr, 10);
      if (ms >= 0) c.overload_retry_after = std::chrono::milliseconds(ms);
    }
    if (const char* v = std::getenv("PARDIS_POA_ASSEMBLY_STALL_MS")) {
      const long ms = std::strtol(v, nullptr, 10);
      if (ms >= 0) c.poa_assembly_stall = std::chrono::milliseconds(ms);
    }
    if (const char* v = std::getenv("PARDIS_INFLIGHT_WINDOW")) {
      const long n = std::strtol(v, nullptr, 10);
      if (n >= 0) c.inflight_window = static_cast<std::size_t>(n);
    }
    if (const char* v = std::getenv("PARDIS_WINDOW_POLICY")) {
      const std::string s(v);
      if (s == "fail") c.window_policy = OrbConfig::WindowPolicy::kFail;
      else if (s == "block") c.window_policy = OrbConfig::WindowPolicy::kBlock;
      else PARDIS_LOG(kWarn, "orb") << "PARDIS_WINDOW_POLICY '" << s
                                    << "' unknown (want block|fail), keeping block";
    }
    if (const char* v = std::getenv("PARDIS_LISTEN_BACKLOG")) {
      const long n = std::strtol(v, nullptr, 10);
      if (n > 0) c.listen_backlog = static_cast<int>(n);
    }
    return c;
  }();
  return cached;
}

Orb::~Orb() {
  if (obs::enabled()) obs::flush_exports();
}

ObjectRef Orb::resolve(const std::string& name, const std::string& host,
                       std::chrono::milliseconds timeout) {
  if (obs::enabled()) {
    static obs::Counter& resolves = obs::metrics().counter("orb.resolves");
    resolves.add(1);
  }
  if (auto ref = registry_->lookup(name, host)) return *ref;
  if (timeout.count() < 0) timeout = config_.resolve_timeout;

  bool activating = false;
  if (activator_) {
    PARDIS_LOG(kInfo, "orb") << "object " << name << "@" << host
                             << " not registered, trying activation";
    activating = activator_(name, host);
  }
  if (activating) {
    // The activation agent starts the server asynchronously; poll the
    // registry until the object registers itself or we give up.
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (auto ref = registry_->lookup(name, host)) return *ref;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    throw ObjectNotExist("no object named '" + name + "' on host '" + host +
                         "': activation started but the object did not register within " +
                         std::to_string(waited.count()) +
                         " ms (PARDIS_RESOLVE_TIMEOUT_MS raises the limit)");
  }
  throw ObjectNotExist("no object named '" + name + "' on host '" + host + "'");
}

void Orb::register_servants(const ObjectRef& ref, std::vector<ServantBase*> per_rank,
                            const void* group) {
  if (per_rank.empty()) throw BadParam("register_servants: no servants");
  LockGuard lock(mutex_);
  servants_[ref.object_id] = CollocatedEntry{std::move(per_rank), group, ref.spmd};
}

void Orb::unregister_servants(const ObjectId& id) {
  LockGuard lock(mutex_);
  servants_.erase(id);
}

const Orb::CollocatedEntry* Orb::collocated(const ObjectId& id) const {
  LockGuard lock(mutex_);
  auto it = servants_.find(id);
  return it != servants_.end() ? &it->second : nullptr;
}

}  // namespace pardis::core
