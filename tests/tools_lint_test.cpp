// pardis-lint golden tests: one fixture per PTxxx rule exercising the
// text renderer (the gcc/clang file:line:col format), the --json
// renderer, allow-comment suppression, --werror exit codes, and the
// lint-cleanliness of the committed source tree (the same invocation
// CI runs as the PardisLint.Sources ctest).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string out;
};

/// Runs pardis-lint with `args`, capturing stdout and the exit code.
RunResult run_lint(const std::string& args) {
  const std::string cmd = std::string(PARDIS_LINT_BIN) + " " + args + " 2>/dev/null";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) r.out.append(buf, n);
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

/// Writes `content` under a per-test fixture dir and returns its path.
class LintFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("pardis_lint_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write(const std::string& name, const std::string& content) {
    const fs::path p = dir_ / name;
    std::ofstream(p) << content;
    return p.generic_string();
  }

  /// Replaces the fixture dir in `out` with "FIX" so expectations are
  /// location-independent golden strings.
  std::string normalized(const std::string& out) const {
    std::string s = out;
    const std::string d = dir_.generic_string();
    for (std::size_t at = s.find(d); at != std::string::npos; at = s.find(d, at))
      s.replace(at, d.size(), "FIX");
    return s;
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// PT002 — wire constants outside the registry
// ---------------------------------------------------------------------------

TEST_F(LintFixture, PT002WireConstantOutsideRegistryGoldenText) {
  const std::string f = write("rogue_wire.hpp",
                              "#pragma once\n"
                              "namespace pardis::core {\n"
                              "inline constexpr unsigned char kFlagBogus = 0x20;\n"
                              "}\n");
  const RunResult r = run_lint(f);
  EXPECT_EQ(r.exit_code, 0);  // warnings only without --werror
  EXPECT_EQ(normalized(r.out),
            "FIX/rogue_wire.hpp:3:32: warning: wire constant 'kFlagBogus' declared "
            "outside the registry; add it to core/wire.hpp (single declaration point, "
            "collision static_asserts) [PT002]\n");
  EXPECT_EQ(run_lint("--werror " + f).exit_code, 1);
}

TEST_F(LintFixture, PT002RepoOpOutsideRegistry) {
  const std::string f = write("rogue_repoop.hpp",
                              "enum class RepoOp : unsigned char { kRegister = 0 };\n");
  const RunResult r = run_lint(f);
  EXPECT_NE(normalized(r.out).find("FIX/rogue_repoop.hpp:1:1: warning: RepoOp"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("[PT002]"), std::string::npos);
}

TEST_F(LintFixture, PT002TheRegistryItselfIsExempt) {
  fs::create_directories(dir_ / "core");
  write("core/wire.hpp", "inline constexpr unsigned kFlagOneway = 0x1;\n");
  EXPECT_EQ(run_lint("--werror " + dir_.generic_string()).exit_code, 0);
}

// ---------------------------------------------------------------------------
// PT003 — raw std::mutex
// ---------------------------------------------------------------------------

TEST_F(LintFixture, PT003RawMutexGoldenText) {
  const std::string f = write("raw.hpp",
                              "#include <mutex>\n"
                              "struct S {\n"
                              "  std::mutex m_;\n"
                              "};\n");
  const RunResult r = run_lint(f);
  EXPECT_EQ(normalized(r.out),
            "FIX/raw.hpp:3:3: warning: raw std::mutex declaration: invisible to "
            "thread-safety analysis and the lock-order detector; declare pardis::Mutex "
            "(common/mutex.hpp) [PT003]\n");
}

TEST_F(LintFixture, PT003AllowCommentSuppresses) {
  const std::string f = write("raw_allowed.hpp",
                              "#include <mutex>\n"
                              "struct S {\n"
                              "  // pardis-lint: allow(raw-mutex) bootstrap lock\n"
                              "  std::mutex m_;\n"
                              "};\n");
  EXPECT_EQ(run_lint("--werror " + f).exit_code, 0);
}

TEST_F(LintFixture, PT003LockGuardTemplateArgumentIsNotADeclaration) {
  const std::string f = write("guard.cpp",
                              "#include <mutex>\n"
                              "void f(std::mutex& m) {\n"
                              "  std::lock_guard<std::mutex> lock(m);\n"
                              "}\n");
  // Line 2's parameter declares storage for a reference, not a mutex;
  // line 3's template argument declares nothing. Only strictly
  // `std::mutex <identifier>` sites count, which neither line is —
  // except the reference parameter, which the heuristic deliberately
  // skips via the '&'.
  const RunResult r = run_lint(f);
  EXPECT_EQ(r.out, "");
}

// ---------------------------------------------------------------------------
// PT004 — pardis::Mutex with no annotation referencing it
// ---------------------------------------------------------------------------

TEST_F(LintFixture, PT004UnannotatedMutexGoldenText) {
  const std::string f = write("unannotated.hpp",
                              "struct S {\n"
                              "  Mutex mutex_{\"x\"};\n"
                              "  int guarded = 0;\n"
                              "};\n");
  const RunResult r = run_lint(f);
  EXPECT_EQ(normalized(r.out),
            "FIX/unannotated.hpp:2:9: warning: Mutex 'mutex_' has no "
            "PARDIS_GUARDED_BY/PARDIS_REQUIRES annotation referencing it; tie it to the "
            "state it guards [PT004]\n");
}

TEST_F(LintFixture, PT004AnnotationAnywhereInFileSatisfies) {
  const std::string f = write("annotated.hpp",
                              "struct S {\n"
                              "  Mutex mutex_{\"x\"};\n"
                              "  int guarded PARDIS_GUARDED_BY(mutex_) = 0;\n"
                              "};\n");
  EXPECT_EQ(run_lint("--werror " + f).exit_code, 0);
}

TEST_F(LintFixture, PT004AllowCommentSuppresses) {
  const std::string f = write("io_mutex.hpp",
                              "// guards a stream, not a member\n"
                              "// pardis-lint: allow(unannotated-mutex)\n"
                              "Mutex g_io{\"io\"};\n");
  EXPECT_EQ(run_lint("--werror " + f).exit_code, 0);
}

// ---------------------------------------------------------------------------
// PT001 — blocking primitives reachable from pump entries
// ---------------------------------------------------------------------------

TEST_F(LintFixture, PT001BlockingReachableThroughCallChain) {
  const std::string f = write("pump.cpp",
                              "#include <thread>\n"
                              "void helper() {\n"
                              "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
                              "}\n"
                              "void step() { helper(); }\n"
                              "void ClientCtx::pump() { step(); }\n");
  const RunResult r = run_lint(f);
  EXPECT_EQ(normalized(r.out),
            "FIX/pump.cpp:3:1: warning: sleep_for reachable from pump entry "
            "'ClientCtx::pump' via ClientCtx::pump -> step -> helper; delivery paths "
            "must not block (poll, hand off, or justify with an allow comment) "
            "[PT001]\n");
}

TEST_F(LintFixture, PT001EntryItselfBlockingIsFlagged) {
  const std::string f = write("enqueue.cpp",
                              "void Endpoint::enqueue(int m) {\n"
                              "  cv_.wait(m);\n"
                              "}\n");
  const RunResult r = run_lint(f);
  EXPECT_NE(normalized(r.out).find("FIX/enqueue.cpp:2:1: warning: condition wait "
                                   "reachable from pump entry 'Endpoint::enqueue'"),
            std::string::npos)
      << r.out;
}

TEST_F(LintFixture, PT001AllowCommentSuppresses) {
  const std::string f = write("allowed.cpp",
                              "void CommSender::run() {\n"
                              "  // pardis-lint: allow(blocking) idle wait for work\n"
                              "  cv_.wait(lock_);\n"
                              "}\n");
  EXPECT_EQ(run_lint("--werror " + f).exit_code, 0);
}

TEST_F(LintFixture, PT001UnreachableBlockingIsNotFlagged) {
  const std::string f = write("offpath.cpp",
                              "#include <thread>\n"
                              "void backoff() {\n"
                              "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                              "}\n"
                              "void ClientCtx::pump() { poll_once(); }\n");
  // backoff() blocks but nothing on the pump path calls it.
  EXPECT_EQ(run_lint("--werror " + f).exit_code, 0);
}

// ---------------------------------------------------------------------------
// Renderers and the committed tree
// ---------------------------------------------------------------------------

TEST_F(LintFixture, JsonRendererGolden) {
  const std::string f = write("rogue.hpp",
                              "inline constexpr unsigned kTagBogus = 7;\n");
  const RunResult r = run_lint("--json " + f);
  EXPECT_EQ(normalized(r.out),
            "[\n"
            "  {\"code\":\"PT002\",\"severity\":\"warning\",\"file\":\"FIX/rogue.hpp\","
            "\"line\":1,\"column\":27,\"message\":\"wire constant 'kTagBogus' declared "
            "outside the registry; add it to core/wire.hpp (single declaration point, "
            "collision static_asserts)\"}\n"
            "]\n");
}

TEST_F(LintFixture, JsonEmptyArrayWhenClean) {
  const std::string f = write("clean.hpp", "inline constexpr int kAnswer = 42;\n");
  const RunResult r = run_lint("--json " + f);
  EXPECT_EQ(r.out, "[]\n");
  EXPECT_EQ(r.exit_code, 0);
}

TEST(LintTree, CommittedSourceTreeIsClean) {
  const RunResult r =
      run_lint("--werror " + std::string(PARDIS_SOURCE_DIR) + "/src");
  EXPECT_EQ(r.out, "") << r.out;
  EXPECT_EQ(r.exit_code, 0);
}

}  // namespace
