// Lock-order cycle detector (check/lockorder.cpp + common/mutex.hpp):
// an injected AB/BA inversion is diagnosed as a located
// check::Violation *before* the acquiring thread blocks (the test
// completes instead of hanging), self-relock of a non-recursive mutex
// is caught, try_lock contributes no edges, destroying a mutex purges
// its node, and real multi-mutex components (flow session transport,
// pool balancer) run cycle-free under the detector — the
// no-false-positive guarantee the default-on CI run relies on.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "check/check.hpp"
#include "check/lockorder.hpp"
#include "common/mutex.hpp"
#include "flow/session_transport.hpp"
#include "pool/pool.hpp"
#include "transport/transport.hpp"

namespace pardis {
namespace {

using namespace std::chrono_literals;

/// Every test runs with the detector on and a fresh acquisition graph,
/// and leaves the process-wide toggle the way it found it.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = check::enabled();
    check::set_enabled(true);
    check::lockorder_reset();
  }
  void TearDown() override {
    check::lockorder_reset();
    check::set_enabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(LockOrderTest, DiagnosesAbBaCycleWithoutHanging) {
  Mutex a{"test.A"};
  Mutex b{"test.B"};

  // Thread 1 commits the order A -> B and fully releases, so no
  // schedule ever actually deadlocks — the inversion is only latent.
  std::thread t([&] {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
  });
  t.join();
  EXPECT_EQ(check::lockorder_edge_count(), 1u);

  // This thread takes the opposite order. Acquiring A while holding B
  // must throw at the call site instead of recording the edge and
  // waiting for a schedule that interleaves the two orders.
  b.lock();
  try {
    a.lock();
    a.unlock();
    b.unlock();
    FAIL() << "AB/BA inversion not diagnosed";
  } catch (const check::Violation& v) {
    b.unlock();
    const std::string what = v.what();
    // Both lock sites are named: the mutex labels and this file.
    EXPECT_NE(what.find("test.A"), std::string::npos) << what;
    EXPECT_NE(what.find("test.B"), std::string::npos) << what;
    EXPECT_NE(what.find("lockcheck_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("potential deadlock"), std::string::npos) << what;
  }
}

TEST_F(LockOrderTest, ThreeLockCycleDiagnosedAcrossThreads) {
  Mutex a{"test.A"};
  Mutex b{"test.B"};
  Mutex c{"test.C"};
  std::thread t1([&] {
    LockGuard la(a);
    LockGuard lb(b);
  });
  t1.join();
  std::thread t2([&] {
    LockGuard lb(b);
    LockGuard lc(c);
  });
  t2.join();
  // C -> A closes A -> B -> C -> A even though no two threads ever
  // contended.
  c.lock();
  EXPECT_THROW(a.lock(), check::Violation);
  c.unlock();
}

TEST_F(LockOrderTest, SelfRelockDiagnosed) {
  Mutex a{"test.relock"};
  a.lock();
  try {
    a.lock();
    FAIL() << "self-relock not diagnosed";
  } catch (const check::Violation& v) {
    EXPECT_NE(std::string(v.what()).find("self-deadlock"), std::string::npos);
  }
  a.unlock();
}

TEST_F(LockOrderTest, ConsistentOrderIsNotFlagged) {
  Mutex a{"test.A"};
  Mutex b{"test.B"};
  auto worker = [&] {
    for (int i = 0; i < 200; ++i) {
      LockGuard la(a);
      LockGuard lb(b);
    }
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(check::lockorder_edge_count(), 1u);  // A -> B, observed once
}

TEST_F(LockOrderTest, TryLockContributesNoEdges) {
  Mutex a{"test.A"};
  Mutex b{"test.B"};
  a.lock();
  ASSERT_TRUE(b.try_lock());  // non-blocking: cannot be a deadlock arc
  b.unlock();
  a.unlock();
  EXPECT_EQ(check::lockorder_edge_count(), 0u);
}

TEST_F(LockOrderTest, DestroyedMutexIsPurgedFromTheGraph) {
  Mutex b{"test.B"};
  {
    Mutex a{"test.A"};
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    EXPECT_EQ(check::lockorder_edge_count(), 1u);
  }
  // A is gone; a fresh mutex reusing its address must not inherit the
  // A -> B edge and report a phantom inversion.
  EXPECT_EQ(check::lockorder_edge_count(), 0u);
  Mutex a2{"test.A2"};
  b.lock();
  a2.lock();  // opposite of the dead edge: must not throw
  a2.unlock();
  b.unlock();
}

TEST_F(LockOrderTest, DisabledDetectorIsInert) {
  check::set_enabled(false);
  Mutex a{"test.A"};
  Mutex b{"test.B"};
  std::thread t([&] {
    LockGuard la(a);
    LockGuard lb(b);
  });
  t.join();
  // The inverted order is taken for real; with the detector off no
  // edges are recorded and nothing throws.
  {
    LockGuard lb(b);
    LockGuard la(a);
  }
  EXPECT_EQ(check::lockorder_edge_count(), 0u);
}

// ---------------------------------------------------------------------------
// No false positives on the real multi-mutex subsystems. These run the
// flow session layer (send/state/in/out/listener mutexes + endpoint
// mutexes) and the pool balancer end to end with the detector on; any
// lock-order inversion in them would throw here.
// ---------------------------------------------------------------------------

TEST_F(LockOrderTest, FlowSessionTrafficIsCycleFree) {
  transport::LocalTransport inner;
  flow::SessionTransport::Options opts;
  opts.enabled = true;
  opts.window = 4;
  flow::SessionTransport sessions(inner, opts);
  auto rx = sessions.create_endpoint("");
  for (int i = 0; i < 32; ++i) {
    ByteBuffer payload;
    CdrWriter w(payload);
    w.write_ulong(static_cast<ULong>(i));
    sessions.rsr(rx->addr(), transport::kHandlerOrbRequest, std::move(payload), "");
  }
  int received = 0;
  while (auto msg = rx->poll()) {
    EXPECT_EQ(msg->handler, transport::kHandlerOrbRequest);
    ++received;
  }
  EXPECT_EQ(received, 32);
  EXPECT_GT(check::lockorder_edge_count(), 0u);  // the detector did watch
}

TEST_F(LockOrderTest, PoolBalancerFeedbackIsCycleFree) {
  core::ReplicaGroup group;
  group.name = "svc";
  for (int i = 0; i < 3; ++i) {
    core::ObjectRef ref;
    ref.type_id = "IDL:svc:1.0";
    ref.name = "svc";
    ref.host = "H" + std::to_string(i);
    ref.object_id = ObjectId{static_cast<ULongLong>(i + 1)};
    transport::EndpointAddr ep;
    ep.local_id = static_cast<ULongLong>(i + 1);
    ref.thread_eps.push_back(ep);
    group.members.push_back(std::move(ref));
  }
  pool::PoolConfig cfg;
  cfg.policy = pool::Policy::kOverloadAware;
  pool::Balancer bal(group, cfg);
  auto hammer = [&] {
    for (int i = 0; i < 100; ++i) {
      const auto ref = bal.pick();
      if (i % 5 == 0)
        bal.report_failure(ref.primary_key(), ErrorCode::kCommFailure, 0);
      else
        bal.report_success(ref.primary_key());
    }
  };
  std::thread t1(hammer), t2(hammer);
  t1.join();
  t2.join();
  EXPECT_EQ(bal.size(), 3u);
}

}  // namespace
}  // namespace pardis
