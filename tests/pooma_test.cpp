// Mini POOMA: field decomposition, guard exchange, stencils, mapping.
#include <gtest/gtest.h>

#include <numeric>

#include "pooma/field2d.hpp"
#include "pooma/mapping.hpp"
#include "rts/domain.hpp"

namespace pardis::pooma {
namespace {

void fill_global(Field2D<double>& f, double (*fn)(std::size_t, std::size_t)) {
  for (std::size_t r = 0; r < f.local_rows(); ++r)
    for (std::size_t c = 0; c < f.ny(); ++c) f.at(r, c) = fn(f.first_row() + r, c);
}

double global_sum(Field2D<double>& f) {
  double local = std::accumulate(f.storage().begin(), f.storage().end(), 0.0);
  return rts::allreduce_sum(f.comm(), local);
}

class PoomaWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(PoomaWidthTest, RowDecompositionCoversGrid) {
  rts::Domain d("pooma", GetParam());
  d.run([](rts::DomainContext& ctx) {
    Field2D<double> f(ctx.comm, 17, 9);
    const auto total =
        rts::allreduce_sum(ctx.comm, static_cast<long>(f.local_rows() * f.ny()));
    EXPECT_EQ(total, 17 * 9);
    auto ed = f.element_distribution();
    EXPECT_EQ(ed.global_size(), 17u * 9u);
    EXPECT_EQ(ed.local_count(ctx.rank), f.local_rows() * f.ny());
  });
}

TEST_P(PoomaWidthTest, GuardExchangeBringsNeighbourRows) {
  rts::Domain d("guards", GetParam());
  d.run([](rts::DomainContext& ctx) {
    Field2D<double> f(ctx.comm, 12, 4);
    fill_global(f, [](std::size_t r, std::size_t c) {
      return static_cast<double>(r * 100 + c);
    });
    f.exchange_guards(-5.0);
    if (f.local_rows() == 0) return;
    if (f.first_row() > 0) {
      for (std::size_t c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(f.north()[c], static_cast<double>((f.first_row() - 1) * 100 + c));
    } else {
      EXPECT_DOUBLE_EQ(f.north()[0], -5.0);  // boundary value at the top edge
    }
    const std::size_t last = f.first_row() + f.local_rows();
    if (last < 12) {
      for (std::size_t c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(f.south()[c], static_cast<double>(last * 100 + c));
    } else {
      EXPECT_DOUBLE_EQ(f.south()[0], -5.0);
    }
  });
}

TEST_P(PoomaWidthTest, DiffusionConservesConstantField) {
  rts::Domain d("diff-const", GetParam());
  d.run([](rts::DomainContext& ctx) {
    Field2D<double> u(ctx.comm, 16, 16), next(ctx.comm, 16, 16);
    fill_global(u, [](std::size_t, std::size_t) { return 7.0; });
    diffusion_step(u, next, 0.4);
    for (double v : next.storage()) EXPECT_NEAR(v, 7.0, 1e-12);
  });
}

TEST_P(PoomaWidthTest, DiffusionMatchesSerialReference) {
  constexpr std::size_t kDim = 20;
  auto init = [](std::size_t r, std::size_t c) {
    return (r == kDim / 2 && c == kDim / 2) ? 100.0 : 0.0;
  };
  std::vector<double> reference(kDim * kDim);
  {
    rts::Domain solo("serial", 1);
    solo.run([&](rts::DomainContext& ctx) {
      Field2D<double> u(ctx.comm, kDim, kDim), t(ctx.comm, kDim, kDim);
      fill_global(u, init);
      for (int s = 0; s < 5; ++s) {
        diffusion_step(u, t, 0.3);
        std::swap(u.storage(), t.storage());
      }
      std::copy(u.storage().begin(), u.storage().end(), reference.begin());
    });
  }
  rts::Domain d("diff", GetParam());
  d.run([&](rts::DomainContext& ctx) {
    Field2D<double> u(ctx.comm, kDim, kDim), t(ctx.comm, kDim, kDim);
    fill_global(u, init);
    for (int s = 0; s < 5; ++s) {
      diffusion_step(u, t, 0.3);
      std::swap(u.storage(), t.storage());
    }
    for (std::size_t r = 0; r < u.local_rows(); ++r)
      for (std::size_t c = 0; c < kDim; ++c)
        EXPECT_NEAR(u.at(r, c), reference[(u.first_row() + r) * kDim + c], 1e-12);
  });
}

TEST_P(PoomaWidthTest, GradientOfLinearRampIsConstant) {
  rts::Domain d("grad", GetParam());
  d.run([](rts::DomainContext& ctx) {
    Field2D<double> u(ctx.comm, 16, 16), g(ctx.comm, 16, 16);
    fill_global(u, [](std::size_t r, std::size_t) { return 2.0 * static_cast<double>(r); });
    gradient_magnitude(u, g);
    // Interior rows: |d/dy| = 2 exactly (central difference of a ramp).
    for (std::size_t r = 0; r < g.local_rows(); ++r) {
      const std::size_t gr = g.first_row() + r;
      if (gr == 0 || gr == 15) continue;  // one-sided at the edges
      for (std::size_t c = 0; c < 16; ++c) EXPECT_NEAR(g.at(r, c), 2.0, 1e-12);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Widths, PoomaWidthTest, ::testing::Values(1, 2, 3, 5));

TEST(PoomaMapping, ViewIsRowAlignedAndZeroCopy) {
  rts::Domain d("map", 3);
  d.run([](rts::DomainContext& ctx) {
    Field2D<double> f(ctx.comm, 9, 4);
    fill_global(f, [](std::size_t r, std::size_t c) { return static_cast<double>(r * 4 + c); });
    auto view = dseq_view(f);
    EXPECT_EQ(view.size(), 36u);
    EXPECT_EQ(view.local().data(), f.storage().data());
    EXPECT_EQ(view.local_size(), f.local_rows() * 4);
  });
}

TEST(PoomaMapping, NativeFromDseqRedistributesToRowAlignment) {
  rts::Domain d("map2", 3);
  d.run([](rts::DomainContext& ctx) {
    // Element-BLOCK over 3 ranks of a 6x6 grid splits mid-row (12
    // elements each); the field needs row-aligned blocks.
    dist::DSequence<double> seq(ctx.comm, 36);
    for (std::size_t li = 0; li < seq.local_size(); ++li)
      seq.local()[li] = static_cast<double>(seq.local_to_global(li));
    Field2D<double> f = native_from_dseq(std::move(seq), ctx.comm);
    EXPECT_EQ(f.nx(), 6u);
    EXPECT_EQ(f.ny(), 6u);
    for (std::size_t r = 0; r < f.local_rows(); ++r)
      for (std::size_t c = 0; c < 6; ++c)
        EXPECT_DOUBLE_EQ(f.at(r, c), static_cast<double>((f.first_row() + r) * 6 + c));
  });
}

TEST(PoomaMapping, NonSquareCountIsRejected) {
  rts::Domain d("map3", 2);
  EXPECT_THROW(d.run([](rts::DomainContext& ctx) {
    dist::DSequence<double> seq(ctx.comm, 35);
    native_from_dseq(std::move(seq), ctx.comm);
  }),
               BadParam);
}

TEST(PoomaTest, MassApproximatelyConservedInInterior) {
  // Diffusion with clamped edges nearly conserves total mass when the
  // hot spot is far from the boundary.
  rts::Domain d("mass", 2);
  d.run([](rts::DomainContext& ctx) {
    Field2D<double> u(ctx.comm, 32, 32), t(ctx.comm, 32, 32);
    fill_global(u, [](std::size_t r, std::size_t c) {
      return (r == 16 && c == 16) ? 1000.0 : 0.0;
    });
    const double before = global_sum(u);
    for (int s = 0; s < 3; ++s) {
      diffusion_step(u, t, 0.2);
      std::swap(u.storage(), t.storage());
    }
    EXPECT_NEAR(global_sum(u), before, 1e-6);
  });
}

}  // namespace
}  // namespace pardis::pooma
