// Communication threads (the paper's §6 proposal): sends handed to a
// dedicated thread do not charge the computing thread's clock, but
// still arrive no earlier than physically possible.
#include <gtest/gtest.h>

#include <future>

#include "core/comm_thread.hpp"
#include "tests/support/calc_api.hpp"

namespace pardis::core {
namespace {

TEST(CommSenderTest, DeliversInOrder) {
  transport::LocalTransport tp;
  auto ep = tp.create_endpoint("");
  CommSender sender(tp, "");
  for (int i = 0; i < 100; ++i) sender.enqueue(ep->addr(), 1, cdr_encode(i));
  sender.flush();
  EXPECT_EQ(ep->pending(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto msg = ep->poll();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(cdr_decode<int>(msg->payload.view()), i);
  }
}

TEST(CommSenderTest, TransferChargedToCommThreadNotCaller) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  auto ep = tp.create_endpoint(sim::Testbed::kHost2);
  CommSender sender(tp, sim::Testbed::kHost1);

  sim::SimClock caller;
  const double link_delay =
      tb.link("HOST1", "HOST2").delay(170000);  // ~10 ms at ATM speed
  {
    sim::ClockBinding bind(caller);
    sim::charge_seconds(1.0);
    ByteBuffer payload;
    payload.grow(170000);
    sender.enqueue(ep->addr(), 1, std::move(payload));
  }
  sender.flush();
  // The computing thread paid nothing for the transfer...
  EXPECT_DOUBLE_EQ(caller.now(), 1.0);
  // ...the communication thread did, starting no earlier than the
  // hand-over time.
  EXPECT_DOUBLE_EQ(sender.sim_time(), 1.0 + link_delay);
  auto msg = ep->poll();
  ASSERT_TRUE(msg.has_value());
  EXPECT_DOUBLE_EQ(msg->sim_time, 1.0 + link_delay);
}

TEST(CommSenderTest, BackToBackSendsSerializeOnTheCommThread) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  auto ep = tp.create_endpoint(sim::Testbed::kHost2);
  CommSender sender(tp, sim::Testbed::kHost1);
  const double per_msg = tb.link("HOST1", "HOST2").delay(170000);
  for (int i = 0; i < 3; ++i) {
    ByteBuffer payload;
    payload.grow(170000);
    sender.enqueue(ep->addr(), 1, std::move(payload));
  }
  sender.flush();
  // One modeled NIC: three transfers queue behind each other.
  EXPECT_NEAR(sender.sim_time(), 3 * per_msg, 1e-9);
}

TEST(CommSenderTest, FailedSendIsLoggedNotFatal) {
  transport::LocalTransport tp;
  transport::EndpointAddr ghost;
  ghost.kind = transport::AddrKind::kLocal;
  ghost.local_id = 424242;
  CommSender sender(tp, "");
  sender.enqueue(ghost, 1, ByteBuffer{});  // no such endpoint
  sender.flush();
  // Sender still usable afterwards.
  auto ep = tp.create_endpoint("");
  sender.enqueue(ep->addr(), 2, ByteBuffer{});
  sender.flush();
  EXPECT_EQ(ep->pending(), 1u);
}

TEST(CommSenderTest, EnqueueAfterShutdownThrows) {
  transport::LocalTransport tp;
  auto ep = tp.create_endpoint("");
  auto sender = std::make_unique<CommSender>(tp, "");
  sender->enqueue(ep->addr(), 1, ByteBuffer{});
  sender.reset();
  // A fresh sender works; a destroyed one cannot be used (compile-time
  // guarantee), but shutdown mid-flush must not deadlock:
  CommSender s2(tp, "");
  s2.flush();  // nothing pending
}

TEST(ClientCommThread, EndToEndInvocationThroughCommThread) {
  transport::LocalTransport tp;
  InProcessRegistry reg;
  Orb orb(tp, reg);
  rts::Domain server("ct-server", 2);
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& ctx) {
    Poa poa(orb, ctx);
    struct Impl : calc_api::POA_calc {
      rts::Communicator* comm;
      double dot(const calc_api::vec& a, const calc_api::vec& b) override {
        double local = 0.0;
        for (std::size_t i = 0; i < a.local_size(); ++i)
          local += a.local()[i] * b.local()[i];
        return rts::allreduce_sum(*comm, local);
      }
      void scale(double, const calc_api::vec&, calc_api::vec&) override {}
      Long counter(Long d) override { return comm->rank() == 0 ? d * 2 : 0; }
      void note(const std::string&) override {}
      void boom(const std::string&) override {}
    } servant;
    servant.comm = &ctx.comm;
    poa.activate_spmd(servant, "ct-calc");
    if (ctx.rank == 0) pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  rts::Domain client("ct-client", 2);
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb, dctx);
    ctx.enable_comm_thread();
    EXPECT_TRUE(ctx.comm_thread_enabled());
    auto proxy = calc_api::calc::_spmd_bind(ctx, "ct-calc");
    calc_api::vec a(dctx.comm, 50), b(dctx.comm, 50);
    for (std::size_t li = 0; li < a.local_size(); ++li) {
      a.local()[li] = 1.0;
      b.local()[li] = 2.0;
    }
    EXPECT_DOUBLE_EQ(proxy->dot(a, b), 100.0);
    EXPECT_EQ(proxy->counter(21), 42);
    ctx.flush_sends();
  });

  poa->deactivate();
  server.join();
}

}  // namespace
}  // namespace pardis::core
