// Distribution invariants across kinds, sizes and rank counts.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "dist/distribution.hpp"

namespace pardis::dist {
namespace {

TEST(DistributionTest, BlockSplitsEvenlyWithRemainderAtFront) {
  Distribution d = Distribution::block(10, 4);
  EXPECT_EQ(d.kind(), DistKind::kBlock);
  EXPECT_EQ(d.local_count(0), 3u);
  EXPECT_EQ(d.local_count(1), 3u);
  EXPECT_EQ(d.local_count(2), 2u);
  EXPECT_EQ(d.local_count(3), 2u);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(5), 1);
  EXPECT_EQ(d.owner(9), 3);
}

TEST(DistributionTest, ConcentratedPutsEverythingOnRoot) {
  Distribution d = Distribution::concentrated(100, 4, 2);
  EXPECT_EQ(d.root(), 2);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(d.local_count(r), r == 2 ? 100u : 0u);
  EXPECT_EQ(d.owner(57), 2);
  EXPECT_EQ(d.global_to_local(57), 57u);
  EXPECT_TRUE(d.intervals(0).empty());
  EXPECT_EQ(d.intervals(2), (std::vector<Interval>{{0, 100}}));
}

TEST(DistributionTest, CyclicOwnership) {
  Distribution d = Distribution::cyclic(10, 3, 2);  // blocks of 2, round robin
  // indices: 01 | 23 | 45 | 67 | 89 -> ranks 0,1,2,0,1
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(3), 1);
  EXPECT_EQ(d.owner(5), 2);
  EXPECT_EQ(d.owner(6), 0);
  EXPECT_EQ(d.owner(9), 1);
  EXPECT_EQ(d.local_count(0), 4u);
  EXPECT_EQ(d.local_count(1), 4u);
  EXPECT_EQ(d.local_count(2), 2u);
  // rank 0 local order: 0,1,6,7
  EXPECT_EQ(d.local_to_global(0, 2), 6u);
  EXPECT_EQ(d.global_to_local(7), 3u);
}

TEST(DistributionTest, IrregularFollowsProportions) {
  Distribution d = Distribution::irregular(100, {1.0, 3.0, 1.0});
  EXPECT_EQ(d.local_count(0), 20u);
  EXPECT_EQ(d.local_count(1), 60u);
  EXPECT_EQ(d.local_count(2), 20u);
}

TEST(DistributionTest, IrregularLargestRemainderSumsExactly) {
  Distribution d = Distribution::irregular(10, {1.0, 1.0, 1.0});  // 3.33 each
  std::size_t total = 0;
  for (int r = 0; r < 3; ++r) total += d.local_count(r);
  EXPECT_EQ(total, 10u);
}

TEST(DistributionTest, FromCountsRoundTripsThroughCdr) {
  Distribution d = Distribution::from_counts({5, 0, 7, 3});
  ByteBuffer buf;
  CdrWriter w(buf);
  d.marshal(w);
  CdrReader r(buf.view());
  Distribution back = Distribution::unmarshal(r);
  EXPECT_EQ(back, d);
  EXPECT_EQ(back.local_count(2), 7u);
}

TEST(DistributionTest, CdrRoundTripAllKinds) {
  for (const Distribution& d :
       {Distribution::block(1024, 7), Distribution::cyclic(1000, 5, 16),
        Distribution::irregular(301, {2, 1, 1}), Distribution::concentrated(77, 3, 1)}) {
    ByteBuffer buf;
    CdrWriter w(buf);
    d.marshal(w);
    CdrReader r(buf.view());
    EXPECT_EQ(Distribution::unmarshal(r), d) << d.to_string();
  }
}

TEST(DistributionTest, UnmarshalRejectsGarbage) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_octet(99);  // invalid kind
  CdrReader r(buf.view());
  EXPECT_THROW(Distribution::unmarshal(r), MarshalError);
}

TEST(DistributionTest, BadParamsThrow) {
  EXPECT_THROW(Distribution::block(10, 0), BadParam);
  EXPECT_THROW(Distribution::cyclic(10, 2, 0), BadParam);
  EXPECT_THROW(Distribution::irregular(10, {}), BadParam);
  EXPECT_THROW(Distribution::irregular(10, {0.0, 0.0}), BadParam);
  EXPECT_THROW(Distribution::irregular(10, {-1.0, 2.0}), BadParam);
  EXPECT_THROW(Distribution::concentrated(10, 2, 5), BadParam);
  Distribution d = Distribution::block(10, 2);
  EXPECT_THROW(d.owner(10), BadParam);
  EXPECT_THROW(d.local_count(2), BadParam);
  EXPECT_THROW(d.local_to_global(0, 99), BadParam);
}

TEST(DistributionTest, ZeroLengthSequences) {
  for (const Distribution& d :
       {Distribution::block(0, 3), Distribution::cyclic(0, 3), Distribution::concentrated(0, 3, 0)}) {
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(d.local_count(r), 0u);
      EXPECT_TRUE(d.intervals(r).empty());
    }
    EXPECT_TRUE(d.cover({0, 0}).empty());
  }
}

// --- property sweep over (kind, n, nranks) -------------------------------

using Shape = std::tuple<int, std::size_t, int>;  // kind selector, n, nranks

class DistributionPropertyTest : public ::testing::TestWithParam<Shape> {
 protected:
  Distribution make() const {
    const auto [k, n, p] = GetParam();
    switch (k) {
      case 0: return Distribution::block(n, p);
      case 1: return Distribution::cyclic(n, p, 3);
      case 2: {
        std::vector<double> props(p);
        for (int r = 0; r < p; ++r) props[r] = 1.0 + r;
        return Distribution::irregular(n, props);
      }
      default: return Distribution::concentrated(n, p, p - 1);
    }
  }
};

TEST_P(DistributionPropertyTest, EveryIndexOwnedExactlyOnceAndMappingsInvert) {
  Distribution d = make();
  std::size_t total = 0;
  for (int r = 0; r < d.nranks(); ++r) total += d.local_count(r);
  ASSERT_EQ(total, d.global_size());

  for (std::size_t g = 0; g < d.global_size(); ++g) {
    const int r = d.owner(g);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, d.nranks());
    const std::size_t li = d.global_to_local(g);
    ASSERT_LT(li, d.local_count(r));
    ASSERT_EQ(d.local_to_global(r, li), g);
  }
}

TEST_P(DistributionPropertyTest, IntervalsPartitionOwnedIndices) {
  Distribution d = make();
  std::vector<int> seen(d.global_size(), 0);
  for (int r = 0; r < d.nranks(); ++r) {
    std::size_t count = 0;
    std::size_t prev_end = 0;
    for (const Interval& iv : d.intervals(r)) {
      EXPECT_FALSE(iv.empty());
      EXPECT_GE(iv.begin, prev_end);  // ordered, disjoint
      prev_end = iv.end;
      count += iv.size();
      for (std::size_t g = iv.begin; g < iv.end; ++g) {
        EXPECT_EQ(d.owner(g), r);
        seen[g]++;
      }
    }
    EXPECT_EQ(count, d.local_count(r));
  }
  for (std::size_t g = 0; g < d.global_size(); ++g) EXPECT_EQ(seen[g], 1);
}

TEST_P(DistributionPropertyTest, CoverTilesAnySubrange) {
  Distribution d = make();
  const std::size_t n = d.global_size();
  for (const Interval& probe :
       {Interval{0, n}, Interval{n / 4, n / 2}, Interval{n / 3, n / 3}, Interval{n - 1, n}}) {
    if (probe.end > n || probe.begin > probe.end) continue;
    std::size_t pos = probe.begin;
    for (const auto& [rank, run] : d.cover(probe)) {
      EXPECT_EQ(run.begin, pos);
      EXPECT_FALSE(run.empty());
      for (std::size_t g = run.begin; g < run.end; ++g) EXPECT_EQ(d.owner(g), rank);
      pos = run.end;
    }
    EXPECT_EQ(pos, probe.end);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributionPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values<std::size_t>(1, 13, 64, 1000),
                       ::testing::Values(1, 2, 5, 8)));

}  // namespace
}  // namespace pardis::dist
