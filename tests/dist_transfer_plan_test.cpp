// Transfer plans: completeness, disjointness, locality.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dist/transfer_plan.hpp"

namespace pardis::dist {
namespace {

TEST(TransferPlanTest, IdentityPlanIsAllLocal) {
  Distribution d = Distribution::block(100, 4);
  TransferPlan plan(d, d);
  EXPECT_EQ(plan.total_elements(), 100u);
  for (const TransferPiece& p : plan.pieces()) EXPECT_EQ(p.src_rank, p.dst_rank);
}

TEST(TransferPlanTest, BlockToConcentratedGathers) {
  TransferPlan plan(Distribution::block(100, 4), Distribution::concentrated(100, 4, 0));
  for (const TransferPiece& p : plan.pieces()) EXPECT_EQ(p.dst_rank, 0);
  EXPECT_EQ(plan.sources(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(plan.incoming(0).size(), 4u);
  EXPECT_TRUE(plan.incoming(1).empty());
}

TEST(TransferPlanTest, ConcentratedToBlockScatters) {
  TransferPlan plan(Distribution::concentrated(100, 4, 2), Distribution::block(100, 4));
  for (const TransferPiece& p : plan.pieces()) EXPECT_EQ(p.src_rank, 2);
  EXPECT_EQ(plan.destinations(2), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(plan.outgoing(0).empty());
}

TEST(TransferPlanTest, SizeMismatchThrows) {
  EXPECT_THROW(TransferPlan(Distribution::block(10, 2), Distribution::block(11, 2)), BadParam);
}

TEST(TransferPlanTest, DifferentRankCountsAreAllowed) {
  // Client domain with 3 threads sending to server domain with 5.
  TransferPlan plan(Distribution::block(100, 3), Distribution::block(100, 5));
  EXPECT_EQ(plan.total_elements(), 100u);
  for (const TransferPiece& p : plan.pieces()) {
    EXPECT_LT(p.src_rank, 3);
    EXPECT_LT(p.dst_rank, 5);
  }
}

TEST(TransferPlanTest, PiecesAreInGlobalOrder) {
  TransferPlan plan(Distribution::cyclic(64, 4, 4), Distribution::block(64, 4));
  std::size_t pos = 0;
  for (const TransferPiece& p : plan.pieces()) {
    EXPECT_EQ(p.span.begin, pos);
    pos = p.span.end;
  }
  EXPECT_EQ(pos, 64u);
}

using PlanShape = std::tuple<int, int, std::size_t>;

class TransferPlanPropertyTest : public ::testing::TestWithParam<PlanShape> {
 protected:
  static Distribution make(int kind, std::size_t n, int p) {
    switch (kind) {
      case 0: return Distribution::block(n, p);
      case 1: return Distribution::cyclic(n, p, 5);
      case 2: return Distribution::irregular(n, std::vector<double>(p, 1.0));
      default: return Distribution::concentrated(n, p, 0);
    }
  }
};

TEST_P(TransferPlanPropertyTest, PlanTilesIndexSpaceWithCorrectEndpoints) {
  const auto [src_kind, dst_kind, n] = GetParam();
  Distribution src = make(src_kind, n, 3);
  Distribution dst = make(dst_kind, n, 4);
  TransferPlan plan(src, dst);

  std::vector<int> covered(n, 0);
  for (const TransferPiece& p : plan.pieces()) {
    EXPECT_FALSE(p.span.empty());
    for (std::size_t g = p.span.begin; g < p.span.end; ++g) {
      EXPECT_EQ(src.owner(g), p.src_rank);
      EXPECT_EQ(dst.owner(g), p.dst_rank);
      covered[g]++;
    }
  }
  for (std::size_t g = 0; g < n; ++g) EXPECT_EQ(covered[g], 1) << "index " << g;
  EXPECT_EQ(plan.total_elements(), n);
}

TEST_P(TransferPlanPropertyTest, OutgoingIncomingPartitionThePieces) {
  const auto [src_kind, dst_kind, n] = GetParam();
  TransferPlan plan(make(src_kind, n, 3), make(dst_kind, n, 4));
  std::size_t out_total = 0, in_total = 0;
  for (int p = 0; p < 3; ++p)
    for (const auto& piece : plan.outgoing(p)) out_total += piece.span.size();
  for (int q = 0; q < 4; ++q)
    for (const auto& piece : plan.incoming(q)) in_total += piece.span.size();
  EXPECT_EQ(out_total, n);
  EXPECT_EQ(in_total, n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TransferPlanPropertyTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3),
                                            ::testing::Values<std::size_t>(1, 60, 257)));

}  // namespace
}  // namespace pardis::dist
