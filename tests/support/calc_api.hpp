// Hand-written stub/skeleton pair for the test interface below — the
// reference for what the IDL compiler generates:
//
//   typedef dsequence<double> vec;
//   interface calc {
//     double dot(in vec a, in vec b);
//     void scale(in double factor, in vec v, out vec r);
//     long counter(in long delta);
//     oneway void note(in string msg);
//     void boom(in string msg);          // always raises
//   };
#pragma once

#include <memory>
#include <string>

#include "core/pardis.hpp"
#include "core/stub_support.hpp"

namespace calc_api {

using vec = pardis::dist::DSequence<double>;
using vec_var = pardis::DSeqVar<double>;

inline constexpr const char* kCalcTypeId = "IDL:calc:1.0";

/// Skeleton (server side).
class POA_calc : public pardis::core::ServantBase {
 public:
  const char* _type_id() const override { return kCalcTypeId; }

  virtual double dot(const vec& a, const vec& b) = 0;
  virtual void scale(double factor, const vec& v, vec& r) = 0;
  virtual pardis::Long counter(pardis::Long delta) = 0;
  virtual void note(const std::string& msg) = 0;
  virtual void boom(const std::string& msg) = 0;

  void _dispatch(pardis::core::ServerInvocation& inv) override {
    const std::string& op = inv.operation();
    if (op == "dot") {
      vec a = inv.in_dseq<double>();
      vec b = inv.in_dseq<double>();
      inv.out_value(dot(a, b));
    } else if (op == "scale") {
      const double factor = inv.in_value<double>();
      vec v = inv.in_dseq<double>();
      vec r = inv.out_dseq_make<double>();
      scale(factor, v, r);
      inv.out_dseq(r);
    } else if (op == "counter") {
      const pardis::Long delta = inv.in_value<pardis::Long>();
      inv.out_value(counter(delta));
    } else if (op == "note") {
      note(inv.in_value<std::string>());
    } else if (op == "boom") {
      boom(inv.in_value<std::string>());
    } else {
      throw pardis::NoImplement("calc has no operation '" + op + "'");
    }
  }
};

/// Proxy (client side).
class calc {
 public:
  using _var = std::shared_ptr<calc>;

  static _var _spmd_bind(pardis::core::ClientCtx& ctx, const std::string& name,
                         const std::string& host = "") {
    return _var(new calc(pardis::core::spmd_bind(ctx, name, host, kCalcTypeId)));
  }
  static _var _bind(pardis::core::ClientCtx& ctx, const std::string& name,
                    const std::string& host = "") {
    return _var(new calc(pardis::core::bind(ctx, name, host, kCalcTypeId)));
  }

  const pardis::core::BindingPtr& _binding() const { return binding_; }

  double dot(const vec& a, const vec& b) {
    if (auto* impl = _collocated()) return impl->dot(a, b);
    pardis::core::ClientRequest req(*binding_, "dot", false, false);
    req.in_dseq(a);
    req.in_dseq(b);
    auto pending = req.invoke();
    auto out = std::make_shared<double>();
    pending->set_decoder(
        [out](pardis::core::ReplyDecoder& d) { *out = d.out_value<double>(); });
    pending->wait();
    return *out;
  }

  void dot_nb(const vec& a, const vec& b, pardis::core::Future<double>& result) {
    if (auto* impl = _collocated()) {
      result = pardis::core::Future<double>::ready(impl->dot(a, b));
      return;
    }
    pardis::core::ClientRequest req(*binding_, "dot", false, false);
    req.in_dseq(a);
    req.in_dseq(b);
    auto pending = req.invoke();
    auto out = std::make_shared<double>();
    pending->set_decoder(
        [out](pardis::core::ReplyDecoder& d) { *out = d.out_value<double>(); });
    result._bind(pending, out);
  }

  void scale(double factor, const vec& v, vec& r) {
    if (auto* impl = _collocated()) {
      impl->scale(factor, v, r);
      return;
    }
    pardis::core::ClientRequest req(*binding_, "scale", false, true);
    req.in_value(factor);
    req.in_dseq(v);
    req.out_dseq_expected(r.distribution());
    auto pending = req.invoke();
    pending->set_decoder([&r](pardis::core::ReplyDecoder& d) { d.out_dseq(r); });
    pending->wait();
  }

  /// Non-blocking variant: `r` must outlive resolution (it is shared).
  void scale_nb(double factor, const vec& v, vec_var r,
                pardis::core::FutureVoid& done) {
    if (auto* impl = _collocated()) {
      impl->scale(factor, v, *r);
      done = pardis::core::FutureVoid::ready();
      return;
    }
    pardis::core::ClientRequest req(*binding_, "scale", false, true);
    req.in_value(factor);
    req.in_dseq(v);
    req.out_dseq_expected(r->distribution());
    auto pending = req.invoke();
    pending->set_decoder([r](pardis::core::ReplyDecoder& d) { d.out_dseq(*r); });
    done._bind(pending);
  }

  pardis::Long counter(pardis::Long delta) {
    if (auto* impl = _collocated()) return impl->counter(delta);
    pardis::core::ClientRequest req(*binding_, "counter", false, false);
    req.in_value(delta);
    auto pending = req.invoke();
    auto out = std::make_shared<pardis::Long>();
    pending->set_decoder(
        [out](pardis::core::ReplyDecoder& d) { *out = d.out_value<pardis::Long>(); });
    pending->wait();
    return *out;
  }

  void counter_nb(pardis::Long delta, pardis::core::Future<pardis::Long>& result) {
    if (auto* impl = _collocated()) {
      result = pardis::core::Future<pardis::Long>::ready(impl->counter(delta));
      return;
    }
    pardis::core::ClientRequest req(*binding_, "counter", false, false);
    req.in_value(delta);
    auto pending = req.invoke();
    auto out = std::make_shared<pardis::Long>();
    pending->set_decoder(
        [out](pardis::core::ReplyDecoder& d) { *out = d.out_value<pardis::Long>(); });
    result._bind(pending, out);
  }

  void note(const std::string& msg) {  // oneway
    if (auto* impl = _collocated()) {
      impl->note(msg);
      return;
    }
    pardis::core::ClientRequest req(*binding_, "note", true, false);
    req.in_value(msg);
    req.invoke();
  }

  void boom(const std::string& msg) {
    if (auto* impl = _collocated()) {
      impl->boom(msg);
      return;
    }
    pardis::core::ClientRequest req(*binding_, "boom", false, false);
    req.in_value(msg);
    req.invoke()->wait();
  }

  /// Generated stubs also expose a mis-spelled operation so tests can
  /// exercise the NO_IMPLEMENT path end to end.
  void bogus_op() {
    pardis::core::ClientRequest req(*binding_, "no_such_op", false, false);
    req.invoke()->wait();
  }

 private:
  explicit calc(pardis::core::BindingPtr binding) : binding_(std::move(binding)) {}

  POA_calc* _collocated() const {
    auto* impl = dynamic_cast<POA_calc*>(binding_->collocated_servant());
    if (impl != nullptr) pardis::core::note_collocated_call();
    return impl;
  }

  pardis::core::BindingPtr binding_;
};

}  // namespace calc_api
