// pardis_wal recovery tests: torn-tail truncation (a crash mid-write
// must cost exactly the un-fsynced tail, reported by LSN), bit-flip
// corruption, sim-modeled endpoint restart (the process comes back at
// the same address and delivery resumes on the original request
// identity), and full restart recovery — a durable servant rebuilt
// from its own log continues the prefix sum where the dead one
// stopped.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/durable.hpp"
#include "core/wire.hpp"
#include "ft/ft.hpp"
#include "pool/pool.hpp"
#include "tests/support/calc_api.hpp"
#include "wal/wal.hpp"

namespace pardis::wal {
namespace {

using calc_api::POA_calc;

struct WalGuard {
  explicit WalGuard(const std::string& scratch)
      : dir(std::filesystem::temp_directory_path() / scratch) {
    std::filesystem::remove_all(dir);
    set_dir(dir.string());
    set_enabled(true);
  }
  ~WalGuard() {
    set_enabled(false);
    std::filesystem::remove_all(dir);
  }
  std::filesystem::path dir;
};

struct PoolEnabledGuard {
  PoolEnabledGuard() { pool::set_enabled(true); }
  ~PoolEnabledGuard() { pool::set_enabled(false); }
};

ByteBuffer bytes_of(const std::string& s) {
  ByteBuffer b;
  b.append_raw(s.data(), s.size());
  return b;
}

std::string string_of(const ByteBuffer& b) {
  return std::string(reinterpret_cast<const char*>(b.view().data()), b.size());
}

/// Writes `n` committed records "r1".."rn" and closes the log.
void write_log(const std::string& path, int n) {
  Log log(path);
  for (int i = 1; i <= n; ++i)
    log.commit(log.append(kRecordMutation, bytes_of("r" + std::to_string(i))));
}

// ---------------------------------------------------------------------------
// Torn and corrupt tails.
// ---------------------------------------------------------------------------

TEST(WalRecoveryTest, TornTailKeepsCompleteRecordsAndReportsTheDrop) {
  WalGuard wal("pardis-wal-torn");
  const std::string path = (wal.dir / "t.wal").string();
  write_log(path, 3);

  // A crash mid-write leaves a partial final frame: chop 3 bytes off
  // the end, cutting into record 3 (every frame is >= 17 bytes).
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);

  Log reopened(path);
  auto recovered = reopened.take_recovered();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(string_of(recovered[0].payload), "r1");
  EXPECT_EQ(string_of(recovered[1].payload), "r2");
  EXPECT_EQ(reopened.first_dropped_lsn(), 3u);  // exactly what the crash cost
  EXPECT_EQ(reopened.last_lsn(), 2u);

  // The truncated log is fully writable again.
  const Lsn fresh = reopened.append(kRecordMutation, bytes_of("after"));
  reopened.commit(fresh);
  auto rec = reopened.read(fresh);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(string_of(rec->payload), "after");
}

TEST(WalRecoveryTest, BitFlipInTheTailDropsTheCorruptRecord) {
  WalGuard wal("pardis-wal-flip");
  const std::string path = (wal.dir / "t.wal").string();
  write_log(path, 3);

  {
    // Flip one bit of the final byte — inside record 3's payload, so
    // its CRC no longer matches.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-1, std::ios::end);
    char byte = 0;
    f.get(byte);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(byte ^ 0x01));
  }

  Log reopened(path);
  auto recovered = reopened.take_recovered();
  ASSERT_EQ(recovered.size(), 2u);  // records behind the corruption survive
  EXPECT_EQ(string_of(recovered[1].payload), "r2");
  EXPECT_EQ(reopened.first_dropped_lsn(), 3u);
}

TEST(WalRecoveryTest, ForeignFileIsRefusedNotClobbered) {
  WalGuard wal("pardis-wal-foreign");
  const std::string path = (wal.dir / "t.wal").string();
  std::filesystem::create_directories(wal.dir);
  const std::string foreign = "this is not a PWAL file";
  {
    std::ofstream f(path, std::ios::binary);
    f << foreign;
  }
  // A file without the PWAL magic is someone else's data: recovery
  // refuses it outright instead of truncating it to an empty log.
  EXPECT_THROW(Log log(path), SystemException);
  std::ifstream f(path, std::ios::binary);
  std::string after((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_EQ(after, foreign);  // untouched
}

TEST(WalRecoveryTest, VersionMismatchRestampsTheHeaderSoNewRecordsSurvive) {
  WalGuard wal("pardis-wal-version");
  const std::string path = (wal.dir / "t.wal").string();
  write_log(path, 2);

  {
    // Forge a future-format log: bump the version byte behind the magic.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(sizeof(ULong), std::ios::beg);
    f.put(static_cast<char>(kWalVersion + 1));
  }

  {
    // Unknown version: recovers empty, and must restamp the header so
    // the file is a current-version log again.
    Log reopened(path);
    EXPECT_TRUE(reopened.take_recovered().empty());
    reopened.commit(reopened.append(kRecordMutation, bytes_of("fresh")));
  }

  // Without the restamp this reopen would see the old version byte
  // again and silently drop "fresh" — forever, on every restart.
  Log again(path);
  auto recovered = again.take_recovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(string_of(recovered[0].payload), "fresh");
}

// ---------------------------------------------------------------------------
// Restart: same identity, durable state.
// ---------------------------------------------------------------------------

class DurableCounterServant : public POA_calc {
 public:
  bool _durable() const override { return true; }
  void _snapshot_state(CdrWriter& w) const override { w.write_long(total_); }
  void _restore_state(CdrReader& r) override { total_ = r.read_long(); }

  double dot(const calc_api::vec&, const calc_api::vec&) override { return 0; }
  void scale(double, const calc_api::vec&, calc_api::vec&) override {}
  Long counter(Long d) override { return total_ += d; }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  Long total_ = 0;
};

class DurableReplicaServer {
 public:
  DurableReplicaServer(core::Orb& orb, const std::string& name, const std::string& label,
                       int width, const sim::HostModel* host = nullptr)
      : domain_(label, width, host) {
    std::promise<core::Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([&orb, name, &pp](rts::DomainContext& sctx) {
      core::Poa poa(orb, sctx);
      DurableCounterServant servant;
      poa.activate_spmd(servant, name, {}, /*replica=*/true);
      if (sctx.rank == 0) pp.set_value(&poa);
      poa.impl_is_ready();
    });
    poa_ = pf.get();
  }

  ~DurableReplicaServer() { stop(); }

  void stop() {
    if (poa_ == nullptr) return;
    poa_->deactivate();
    domain_.join();
    poa_ = nullptr;
  }

 private:
  rts::Domain domain_;
  core::Poa* poa_ = nullptr;
};

Long retried_counter(const std::shared_ptr<pool::GroupBinding>& gb, Long value,
                     const ft::RetryPolicy& policy) {
  core::ClientRequest req(*gb->binding(), "counter", false, false);
  req.in_value<Long>(value);
  auto out = std::make_shared<Long>(-1);
  ft::with_retry(*gb->binding(), "counter", policy, [&](int attempt) {
    auto pending = req.invoke(attempt);
    pending->set_decoder([out](core::ReplyDecoder& d) { *out = d.out_value<Long>(); });
    return pending;
  });
  return *out;
}

pool::PoolConfig pool_cfg() {
  pool::PoolConfig cfg;
  cfg.policy = pool::Policy::kOverloadAware;
  cfg.probation = std::chrono::milliseconds(25);
  cfg.overload_quarantine = std::chrono::milliseconds(25);
  return cfg;
}

// Satellite: sim::FaultPlan::restart_endpoint. The modeled process
// dies and comes back at the same address with its WAL intact; the
// in-flight retry keeps its original request identity across the
// outage and lands exactly once when delivery resumes.
TEST(WalRecoveryTest, RestartEndpointResumesDeliveryOnTheSameIdentity) {
  WalGuard wal("pardis-wal-restart-ep");
  PoolEnabledGuard pool_on;
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  DurableReplicaServer a(orb, "wal-rst", "wal-rst-r0", 1, tb.host(sim::Testbed::kHost2));

  core::ClientCtx ctx(orb);
  auto gb = pool::GroupBinding::bind(ctx, "wal-rst", "", calc_api::kCalcTypeId, pool_cfg());
  ASSERT_TRUE(gb->binding()->exactly_once());

  ft::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = std::chrono::milliseconds(10);

  EXPECT_EQ(retried_counter(gb, 1, policy), 1);
  EXPECT_EQ(retried_counter(gb, 2, policy), 3);

  // Take the only replica down, bring it back while the client is
  // still retrying. There is no sibling to fail over to, so the retry
  // must ride out the outage on the SAME (binding, seq) identity.
  std::vector<ULongLong> eps;
  for (const auto& ep : gb->current().thread_eps) eps.push_back(ep.local_id);
  for (ULongLong ep : eps) tb.faults().kill_endpoint(ep);
  std::thread restarter([&tb, eps] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (ULongLong ep : eps) tb.faults().restart_endpoint(ep);
  });
  EXPECT_EQ(retried_counter(gb, 3, policy), 6);  // delivered exactly once
  restarter.join();
  EXPECT_EQ(retried_counter(gb, 4, policy), 10);
}

// The full crash/restart cycle: a durable servant's replacement opens
// the same log file (same name, host, rank), replays the committed
// mutations into fresh servant state, and the next mutation continues
// the prefix sum where the dead process stopped.
TEST(WalRecoveryTest, RestartRecoversCommittedStateFromTheLog) {
  WalGuard wal("pardis-wal-restart-log");
  PoolEnabledGuard pool_on;
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);

  const ft::RetryPolicy policy = ft::RetryPolicy::from_env();
  Long expect = 0;
  {
    DurableReplicaServer first(orb, "wal-dur", "wal-dur-r0", 1,
                               tb.host(sim::Testbed::kHost2));
    core::ClientCtx ctx(orb);
    auto gb =
        pool::GroupBinding::bind(ctx, "wal-dur", "", calc_api::kCalcTypeId, pool_cfg());
    for (int i = 1; i <= 4; ++i) {
      expect += i;
      ASSERT_EQ(retried_counter(gb, i, policy), expect);
    }
    // first's destructor models the crash: the process is gone, the
    // log file is what's left.
  }
  ASSERT_FALSE(std::filesystem::is_empty(wal.dir));  // the mutations hit disk

  DurableReplicaServer second(orb, "wal-dur", "wal-dur-r0b", 1,
                              tb.host(sim::Testbed::kHost2));
  core::ClientCtx ctx(orb);
  auto gb =
      pool::GroupBinding::bind(ctx, "wal-dur", "", calc_api::kCalcTypeId, pool_cfg());
  expect += 5;
  EXPECT_EQ(retried_counter(gb, 5, policy), expect);  // 15: recovery replayed 1..4
}

}  // namespace
}  // namespace pardis::wal
