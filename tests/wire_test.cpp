// Wire-hardening tests: the shared CRC32, PIOP frame trailers, strict
// demarshalling, hello version negotiation, peer quarantine, the
// corrupt-link fault injector, and end-to-end exactly-once delivery
// over deliberately corrupted links (single, SPMD, session, TCP).
//
// Golden-bytes cases prove the knob-off wire format is byte-identical
// to the pre-hardening protocol — the same discipline every prior
// trailing-field extension (trace, deadline, retry) was held to.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "common/crc.hpp"
#include "flow/session_transport.hpp"
#include "ft/ft.hpp"
#include "pool/pool.hpp"
#include "tests/support/calc_api.hpp"
#include "transport/wire_guard.hpp"
#include "wal/wal.hpp"

namespace pardis::core {
namespace {

using calc_api::POA_calc;
using calc_api::vec;
using namespace std::chrono_literals;

/// Spins (bounded) until `pred` holds; false = timed out.
template <typename Pred>
bool spin_until(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// Restores every wire knob and the process-wide PeerGuard on scope
/// exit — the guard's peer keys (modeled host names) are shared across
/// test cases, so leaked state would poison later tests.
struct WireKnobGuard {
  WireKnobGuard() { wire::guard().reset(); }
  ~WireKnobGuard() {
    wire::set_frame_crc(-1);
    wire::set_strict(-1);
    wire::set_hello(-1);
    wire::set_bad_frame_limit(-1);
    wire::guard().reset();
  }
};

// ---------------------------------------------------------------------------
// Shared CRC32 (common/crc.hpp) and the WAL's use of it.
// ---------------------------------------------------------------------------

TEST(WireCrc, SharedCrc32MatchesCheckValue) {
  // The IEEE 802.3 check value: CRC32("123456789") == 0xCBF43926.
  const Octet digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(pardis::crc32(digits), 0xCBF43926u);
  // The WAL's crc32 is the same function (hoisted, not forked).
  EXPECT_EQ(wal::crc32(digits), 0xCBF43926u);
  // Chained == one-shot over the concatenation.
  ULong state = crc32_begin();
  state = crc32_update(state, std::span<const Octet>(digits, 4));
  state = crc32_update(state, std::span<const Octet>(digits + 4, 5));
  EXPECT_EQ(crc32_final(state), 0xCBF43926u);
}

TEST(WireCrc, AppendVerifyRoundTripTrimsTrailer) {
  ByteBuffer frame;
  CdrWriter w(frame);
  w.write_ulong(0xA1B2C3D4u);
  w.write_string("payload");
  const std::size_t body_size = frame.size();
  wire::append_crc(frame);
  ASSERT_EQ(frame.size(), body_size + 4);

  CdrReader r(frame.view());
  wire::verify_crc(r, "test");
  // The trailer is gone from the logical stream.
  EXPECT_EQ(r.remaining(), body_size);
  EXPECT_EQ(r.read_ulong(), 0xA1B2C3D4u);
  EXPECT_EQ(r.read_string(), "payload");
  EXPECT_EQ(r.rest().size(), 0u);
}

TEST(WireCrc, FlippedByteFailsVerification) {
  ByteBuffer frame;
  CdrWriter w(frame);
  w.write_ulong(42);
  wire::append_crc(frame);

  for (const std::size_t at : {std::size_t{0}, frame.size() - 5, frame.size() - 1}) {
    ByteBuffer bad = frame.clone();
    bad.mutable_view()[at] ^= 0x10;
    CdrReader r(bad.view());
    EXPECT_THROW(wire::verify_crc(r, "test"), DecodeError) << "byte " << at;
  }
  // Too short to even carry a trailer.
  const Octet tiny[] = {1, 2, 3};
  CdrReader r(std::span<const Octet>(tiny, 3));
  EXPECT_THROW(wire::verify_crc(r, "test"), DecodeError);
}

// ---------------------------------------------------------------------------
// WAL golden frames: the hoisted CRC produces the exact bytes the old
// in-module implementation did, so logs written before the refactor
// still recover.
// ---------------------------------------------------------------------------

namespace {

ByteBuffer wal_test_frame(ULongLong lsn, Octet type, std::span<const Octet> payload,
                          ULong crc) {
  const ULong len = static_cast<ULong>(payload.size());
  ByteBuffer frame;
  frame.append_raw(&len, sizeof(len));
  frame.append_raw(&crc, sizeof(crc));
  frame.append_raw(&lsn, sizeof(lsn));
  frame.append_raw(&type, sizeof(type));
  frame.append(payload);
  return frame;
}

}  // namespace

TEST(WalGolden, FrameCrcConstantsUnchanged) {
  // Golden values computed independently (zlib.crc32 over
  // [lsn 8B LE][type 1B][payload]); a drift here means logs written by
  // earlier builds would be dropped as corrupt on recovery.
  const Octet p1[] = {1, 2, 3, 4, 5};
  ByteBuffer body;
  body.append(wal_test_frame(1, 1, p1, 0x06C125FDu).view());
  body.append(wal_test_frame(9, 3, {}, 0xD3A3F34Fu).view());

  const wal::ScanResult res = wal::scan_records(body.view());
  EXPECT_EQ(res.dropped, 0u);
  EXPECT_EQ(res.first_dropped_lsn, 0u);
  EXPECT_EQ(res.valid_bytes, body.size());
  ASSERT_EQ(res.records.size(), 2u);
  EXPECT_EQ(res.records[0].lsn, 1u);
  EXPECT_EQ(res.records[0].type, 1);
  EXPECT_EQ(res.records[0].payload.size(), 5u);
  EXPECT_EQ(res.records[1].lsn, 9u);
  EXPECT_EQ(res.records[1].payload.size(), 0u);
}

TEST(WalGolden, ScanStopsAtCorruptAndTornFrames) {
  const Octet p1[] = {1, 2, 3, 4, 5};
  ByteBuffer good = wal_test_frame(1, 1, p1, 0x06C125FDu);

  // A bit flipped in the payload: the frame (and everything after it)
  // is dropped, and the valid prefix is exactly the records before it.
  ByteBuffer body = good.clone();
  ByteBuffer corrupt = wal_test_frame(2, 1, p1, 0x06C125FDu);  // CRC of lsn 1, not 2
  body.append(corrupt.view());
  wal::ScanResult res = wal::scan_records(body.view());
  ASSERT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.valid_bytes, good.size());
  EXPECT_EQ(res.dropped, 1u);
  EXPECT_EQ(res.first_dropped_lsn, 2u);

  // A torn tail (truncated mid-frame) reports max_lsn + 1.
  ByteBuffer torn = good.clone();
  torn.append(good.view().first(good.size() / 2));
  res = wal::scan_records(torn.view());
  ASSERT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.dropped, 1u);
  EXPECT_EQ(res.first_dropped_lsn, 2u);
}

// ---------------------------------------------------------------------------
// Golden bytes: with the CRC knob off (the default) the marshaled
// headers are byte-identical to the pre-hardening wire format.
// ---------------------------------------------------------------------------

TEST(WireGolden, RequestHeaderBytesUnchangedWithCrcOff) {
  WireKnobGuard knobs;
  wire::set_frame_crc(0);
  wire::set_hello(0);

  RequestHeader h;
  h.request_id.value = 7;
  h.binding_id = 3;
  h.seq_no = 2;
  h.object_id.value = 9;
  h.operation = "solve";
  h.flags = kFlagCollective;
  h.client_rank = 1;
  h.client_size = 2;
  h.reply_to.kind = transport::AddrKind::kLocal;
  h.reply_to.host_model = "HOST1";
  h.reply_to.local_id = 4;
  h.crc = wire::frame_crc();  // what every send site does: knob off -> false

  ByteBuffer now;
  CdrWriter w(now);
  h.marshal(w);

  // The pre-hardening wire format, written field by field by hand.
  ByteBuffer old;
  CdrWriter ow(old);
  ow.write_ulonglong(7);  // request_id
  ow.write_ulonglong(3);  // binding_id
  ow.write_ulong(2);      // seq_no
  ow.write_ulonglong(9);  // object_id
  ow.write_string("solve");
  ow.write_octet(kFlagCollective);
  ow.write_long(1);  // client_rank
  ow.write_long(2);  // client_size
  h.reply_to.marshal(ow);

  EXPECT_EQ(now, old);
}

TEST(WireGolden, ReplyHeaderBytesUnchangedWithCrcOff) {
  WireKnobGuard knobs;
  wire::set_frame_crc(0);

  ReplyHeader ok;
  ok.request_id.value = 11;
  ok.server_rank = 1;
  ok.server_size = 2;
  ok.crc = wire::frame_crc();
  ByteBuffer now;
  CdrWriter w(now);
  ok.marshal(w);

  ByteBuffer old;
  CdrWriter ow(old);
  ow.write_ulonglong(11);
  ow.write_long(1);
  ow.write_long(2);
  ow.write_octet(0);  // ReplyStatus::kOk, no flags
  EXPECT_EQ(now, old);

  ReplyHeader err;
  err.request_id.value = 12;
  err.status = ReplyStatus::kSystemException;
  err.error_code = ErrorCode::kTimeout;
  err.error_message = "late";
  ByteBuffer enow;
  CdrWriter ew(enow);
  err.marshal(ew);

  ByteBuffer eold;
  CdrWriter eow(eold);
  eow.write_ulonglong(12);
  eow.write_long(0);
  eow.write_long(1);
  eow.write_octet(1);  // kSystemException
  eow.write_octet(static_cast<Octet>(ErrorCode::kTimeout));
  eow.write_string("late");
  EXPECT_EQ(enow, eold);
}

// ---------------------------------------------------------------------------
// CRC-sealed headers: round trip, trailer stripping, corruption.
// ---------------------------------------------------------------------------

TEST(WireCrcHeader, SealedRequestRoundTripsAndBodyExcludesTrailer) {
  RequestHeader h;
  h.request_id.value = 21;
  h.operation = "compute";
  h.crc = true;

  ByteBuffer frame;
  CdrWriter w(frame);
  h.marshal(w);
  const Octet body[] = {9, 8, 7, 6, 5};
  frame.append(std::span<const Octet>(body, sizeof(body)));
  wire::append_crc(frame);

  CdrReader r(frame.view());
  const RequestHeader back = RequestHeader::unmarshal(r);
  EXPECT_EQ(back.request_id.value, 21u);
  EXPECT_EQ(back.operation, "compute");
  // The flag and trailer are consumed: a re-marshal is unsealed, and
  // the extracted body is exactly the original bytes.
  EXPECT_FALSE(back.crc);
  EXPECT_EQ(back.flags & kFlagCrc, 0);
  const auto rest = r.rest();
  ASSERT_EQ(rest.size(), sizeof(body));
  EXPECT_TRUE(std::equal(rest.begin(), rest.end(), body));
}

TEST(WireCrcHeader, SealedRequestCorruptionDetected) {
  RequestHeader h;
  h.request_id.value = 22;
  h.operation = "compute";
  h.crc = true;
  ByteBuffer frame;
  CdrWriter w(frame);
  h.marshal(w);
  const Octet body[] = {1, 2, 3};
  frame.append(std::span<const Octet>(body, sizeof(body)));
  wire::append_crc(frame);

  // A flip in the header, in the body, or in the trailer itself: all
  // must surface as a located DecodeError, never a misparse.
  for (const std::size_t at :
       {std::size_t{2}, frame.size() - 6, frame.size() - 1}) {
    ByteBuffer bad = frame.clone();
    bad.mutable_view()[at] ^= 0x04;
    CdrReader r(bad.view());
    EXPECT_THROW(RequestHeader::unmarshal(r), MarshalError) << "byte " << at;
  }
}

TEST(WireCrcHeader, SealedReplyRoundTrips) {
  ReplyHeader h;
  h.request_id.value = 23;
  h.status = ReplyStatus::kSystemException;
  h.error_code = ErrorCode::kOverload;
  h.error_message = "busy";
  h.retry_after_ms = 30;
  h.crc = true;
  ByteBuffer frame;
  CdrWriter w(frame);
  h.marshal(w);
  wire::append_crc(frame);

  CdrReader r(frame.view());
  const ReplyHeader back = ReplyHeader::unmarshal(r);
  EXPECT_EQ(back.status, ReplyStatus::kSystemException);
  EXPECT_EQ(back.error_code, ErrorCode::kOverload);
  EXPECT_EQ(back.retry_after_ms, 30u);
  EXPECT_FALSE(back.crc);
  EXPECT_EQ(r.rest().size(), 0u);

  ByteBuffer bad = frame.clone();
  bad.mutable_view()[5] ^= 0x80;
  CdrReader rb(bad.view());
  EXPECT_THROW(ReplyHeader::unmarshal(rb), MarshalError);
}

// ---------------------------------------------------------------------------
// Strict demarshalling: unknown flag bits and impossible field
// combinations are rejected with located errors.
// ---------------------------------------------------------------------------

namespace {

/// Hand-writes a request header with an arbitrary raw flag octet and
/// matrix coordinates — the knob strict decoding must judge. `extra`
/// appends trailing fields through the SAME writer (CDR alignment is
/// relative to the writer's base, so a second writer would misalign).
ByteBuffer raw_request(Octet flags, Long rank, Long size,
                       const std::function<void(CdrWriter&)>& extra = nullptr) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_ulonglong(7);
  w.write_ulonglong(3);
  w.write_ulong(2);
  w.write_ulonglong(9);
  w.write_string("solve");
  w.write_octet(flags);
  w.write_long(rank);
  w.write_long(size);
  transport::EndpointAddr ep;
  ep.kind = transport::AddrKind::kLocal;
  ep.host_model = "H";
  ep.local_id = 4;
  ep.marshal(w);
  if (extra) extra(w);
  return buf;
}

}  // namespace

TEST(WireStrict, UnknownRequestFlagBitRejectedStrictToleratedOtherwise) {
  WireKnobGuard knobs;
  const ByteBuffer buf = raw_request(0x40, 0, 1);

  wire::set_strict(1);
  {
    CdrReader r(buf.view());
    EXPECT_THROW(RequestHeader::unmarshal(r), DecodeError);
  }
  // The legacy tolerate-and-ignore behavior stays available for
  // mixed-version fleets.
  wire::set_strict(0);
  {
    CdrReader r(buf.view());
    const RequestHeader h = RequestHeader::unmarshal(r);
    EXPECT_EQ(h.flags & 0x40, 0x40);
  }
}

TEST(WireStrict, ImpossibleMatrixCoordinatesAlwaysRejected) {
  WireKnobGuard knobs;
  wire::set_strict(0);  // these are hostile even under the tolerant knob
  {
    CdrReader r_zero(raw_request(0, 0, 0).view());
    EXPECT_THROW(RequestHeader::unmarshal(r_zero), DecodeError);
  }
  {
    CdrReader r_wide(raw_request(0, 0, kMaxSpmdWidth + 1).view());
    EXPECT_THROW(RequestHeader::unmarshal(r_wide), DecodeError);
  }
  {
    CdrReader r_rank(raw_request(0, 5, 2).view());
    EXPECT_THROW(RequestHeader::unmarshal(r_rank), DecodeError);
  }
}

TEST(WireStrict, RetryFlagWithZeroAttemptRejected) {
  const ByteBuffer buf = raw_request(
      kFlagRetry, 0, 1,
      [](CdrWriter& w) { w.write_ulong(0); });  // attempt 0 contradicts kFlagRetry
  CdrReader r(buf.view());
  EXPECT_THROW(RequestHeader::unmarshal(r), DecodeError);
}

namespace {

ByteBuffer raw_reply_prefix(Long rank, Long size, Octet status_octet,
                            const std::function<void(CdrWriter&)>& extra = nullptr) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_ulonglong(7);
  w.write_long(rank);
  w.write_long(size);
  w.write_octet(status_octet);
  if (extra) extra(w);
  return buf;
}

}  // namespace

TEST(WireStrict, BadReplyStatusAndErrorCodeRejected) {
  {
    // Status value 3 is outside the enum even after masking flag bits.
    CdrReader r(raw_reply_prefix(0, 1, 0x03).view());
    EXPECT_THROW(ReplyHeader::unmarshal(r), DecodeError);
  }
  {
    const ByteBuffer buf =
        raw_reply_prefix(0, 1, 0x01,  // kSystemException
                         [](CdrWriter& w) {
                           w.write_octet(200);  // no such ErrorCode
                           w.write_string("boom");
                         });
    CdrReader r(buf.view());
    EXPECT_THROW(ReplyHeader::unmarshal(r), DecodeError);
  }
  {
    CdrReader r(raw_reply_prefix(3, 2, 0x00).view());  // rank outside matrix
    EXPECT_THROW(ReplyHeader::unmarshal(r), DecodeError);
  }
}

TEST(WireStrict, RetryAfterOnOkReplyRejectedStrictOnly) {
  WireKnobGuard knobs;
  const ByteBuffer buf =
      raw_reply_prefix(0, 1, kReplyFlagRetryAfter,  // hint on kOk
                       [](CdrWriter& w) { w.write_ulong(5); });

  wire::set_strict(1);
  {
    CdrReader r(buf.view());
    EXPECT_THROW(ReplyHeader::unmarshal(r), DecodeError);
  }
  wire::set_strict(0);
  {
    CdrReader r(buf.view());
    const ReplyHeader h = ReplyHeader::unmarshal(r);
    EXPECT_EQ(h.retry_after_ms, 5u);
  }
}

// ---------------------------------------------------------------------------
// CdrReader hardening: hostile length prefixes and recursion bombs.
// ---------------------------------------------------------------------------

TEST(CdrHardening, HugeClaimedStringRejectedBeforeAllocation) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_ulong(0xFFFFFFF0u);  // claims ~4 GB in an 8-byte frame
  CdrReader r(buf.view());
  EXPECT_THROW(r.read_string(), DecodeError);
}

TEST(CdrHardening, HugeClaimedSequenceCountsRejectedBeforeAllocation) {
  {
    ByteBuffer buf;
    CdrWriter w(buf);
    w.write_ulong(0x40000000u);
    CdrReader r(buf.view());
    EXPECT_THROW(r.read_prim_seq<ULong>(), DecodeError);
  }
  {
    // Element sequences: the count bound is remaining() — every element
    // costs at least one wire byte, so a bigger claim is provably hostile.
    ByteBuffer buf;
    CdrWriter w(buf);
    w.write_ulong(0x7FFFFFFFu);
    CdrReader r(buf.view());
    std::vector<std::string> v;
    EXPECT_THROW(CdrTraits<std::vector<std::string>>::unmarshal(r, v), DecodeError);
  }
}

TEST(CdrHardening, NestedDecodeDepthBudgetEnforced) {
  const Octet none[1] = {0};
  CdrReader r(std::span<const Octet>(none, 0));
  for (int i = 0; i < kMaxDecodeDepth; ++i) r.enter_nested();
  EXPECT_THROW(r.enter_nested(), DecodeError);
}

TEST(CdrHardening, TrimShrinksLogicalStream) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_ulong(1);
  w.write_ulong(2);
  CdrReader r(buf.view());
  r.trim(4);
  EXPECT_EQ(r.read_ulong(), 1u);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.read_ulong(), DecodeError);
  EXPECT_THROW(r.trim(1), DecodeError);
}

// ---------------------------------------------------------------------------
// Hello: version negotiation payload.
// ---------------------------------------------------------------------------

TEST(WireHello, RoundTripValidatesAndToleratesUnknownFeatures) {
  WireKnobGuard knobs;
  wire::Hello h;
  h.features = transport::kFeatureFrameCrc | 0xFF00u;  // future bits
  ByteBuffer buf;
  CdrWriter w(buf);
  h.marshal(w);

  CdrReader r(buf.view());
  const wire::Hello back = wire::Hello::unmarshal(r);
  EXPECT_NO_THROW(back.validate());  // unknown feature bits tolerated
  EXPECT_EQ(back.magic, transport::kHelloMagic);
  EXPECT_EQ(back.features, h.features);
}

TEST(WireHello, ForeignMagicAndVersionRejected) {
  wire::Hello bad_magic;
  bad_magic.magic = 0x47494F50;  // "GIOP" — a different protocol
  EXPECT_THROW(bad_magic.validate(), DecodeError);

  wire::Hello bad_version;
  bad_version.version = transport::kWireVersion + 1;
  EXPECT_THROW(bad_version.validate(), DecodeError);
}

TEST(WireHello, LocalHelloAnnouncesCrcCapability) {
  WireKnobGuard knobs;
  wire::set_frame_crc(1);
  EXPECT_EQ(wire::local_hello().features & transport::kFeatureFrameCrc,
            transport::kFeatureFrameCrc);
  wire::set_frame_crc(0);
  EXPECT_EQ(wire::local_hello().features & transport::kFeatureFrameCrc, 0u);
}

// ---------------------------------------------------------------------------
// PeerGuard: bad-frame accounting and quarantine verdicts.
// ---------------------------------------------------------------------------

TEST(PeerGuardTest, QuarantinesAtLimitAndFiresListenerOnce) {
  WireKnobGuard knobs;
  wire::set_bad_frame_limit(3);
  wire::PeerGuard g;
  std::vector<std::string> fired;
  g.add_listener([&](const std::string& peer) { fired.push_back(peer); });

  EXPECT_FALSE(g.note_bad_frame("HOSTX", "garbage"));
  EXPECT_FALSE(g.note_bad_frame("HOSTX", "garbage"));
  EXPECT_FALSE(g.quarantined("HOSTX"));
  EXPECT_TRUE(g.note_bad_frame("HOSTX", "garbage"));  // crossed the limit
  EXPECT_TRUE(g.quarantined("HOSTX"));
  EXPECT_FALSE(g.note_bad_frame("HOSTX", "garbage"));  // already quarantined
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "HOSTX");
  EXPECT_EQ(g.bad_frames("HOSTX"), 4u);
  EXPECT_FALSE(g.quarantined("HOSTY"));

  g.reset();
  EXPECT_FALSE(g.quarantined("HOSTX"));
  EXPECT_EQ(g.bad_frames("HOSTX"), 0u);
}

TEST(PeerGuardTest, EmptyPeerAndZeroLimitNeverQuarantine) {
  WireKnobGuard knobs;
  wire::PeerGuard g;

  wire::set_bad_frame_limit(1);
  // Frames with no peer identity (loopback) are never quarantined.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(g.note_bad_frame("", "garbage"));
  EXPECT_FALSE(g.quarantined(""));

  // Limit 0 disables quarantine entirely.
  wire::set_bad_frame_limit(0);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(g.note_bad_frame("HOSTZ", "garbage"));
  EXPECT_FALSE(g.quarantined("HOSTZ"));
}

TEST(PeerGuardTest, BalancerHardFailsAbusedHost) {
  // The pool side of the quarantine verdict: every member on the
  // quarantined host takes a hard failure.
  ReplicaGroup group;
  group.name = "g";
  group.epoch = 1;
  for (int i = 0; i < 2; ++i) {
    ObjectRef ref;
    ref.type_id = "IDL:calc:1.0";
    ref.name = "g";
    ref.host = i == 0 ? "HOSTA" : "HOSTB";
    ref.object_id = ObjectId{static_cast<std::uint64_t>(i + 1)};
    transport::EndpointAddr ep;
    ep.kind = transport::AddrKind::kLocal;
    ep.host_model = ref.host;
    ep.local_id = static_cast<ULongLong>(i + 1);
    ref.thread_eps.push_back(ep);
    group.members.push_back(ref);
  }
  pool::Balancer balancer(group, pool::PoolConfig{});

  balancer.report_host_abuse("HOSTA");
  const auto stats = balancer.snapshot();
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    if (s.host == "HOSTA") {
      EXPECT_TRUE(s.quarantined);
      EXPECT_LT(s.health, 1.0);
    } else {
      EXPECT_FALSE(s.quarantined);
      EXPECT_DOUBLE_EQ(s.health, 1.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Corruption fault injection: deterministic payload mangling.
// ---------------------------------------------------------------------------

TEST(FaultCorrupt, PayloadMutationsAreDeterministicPerMode) {
  const Octet raw[] = {10, 20, 30, 40, 50, 60, 70, 80};
  auto fresh = [&] { return ByteBuffer::from(std::span<const Octet>(raw, sizeof(raw))); };

  // Bit flip: exactly one bit differs, same bit for the same draw.
  ByteBuffer a = fresh(), b = fresh();
  sim::corrupt_payload(a, sim::CorruptMode::kBitFlip, 12345);
  sim::corrupt_payload(b, sim::CorruptMode::kBitFlip, 12345);
  EXPECT_EQ(a, b);
  int bit_diffs = 0;
  for (std::size_t i = 0; i < sizeof(raw); ++i)
    bit_diffs += __builtin_popcount(static_cast<unsigned>(a.view()[i] ^ raw[i]));
  EXPECT_EQ(bit_diffs, 1);

  // Truncate: strictly shorter, a prefix of the original.
  ByteBuffer t = fresh();
  sim::corrupt_payload(t, sim::CorruptMode::kTruncate, 999);
  ASSERT_LT(t.size(), sizeof(raw));
  EXPECT_TRUE(std::equal(t.view().begin(), t.view().end(), raw));

  // Garbage: same length, at least one byte rewritten... or rewritten
  // to the same value — assert only length and determinism.
  ByteBuffer g1 = fresh(), g2 = fresh();
  sim::corrupt_payload(g1, sim::CorruptMode::kGarbage, 777);
  sim::corrupt_payload(g2, sim::CorruptMode::kGarbage, 777);
  EXPECT_EQ(g1.size(), sizeof(raw));
  EXPECT_EQ(g1, g2);

  // Empty payloads are left untouched.
  ByteBuffer empty;
  sim::corrupt_payload(empty, sim::CorruptMode::kBitFlip, 1);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(FaultCorrupt, CorruptMessageFiresAtExactIndexDeterministically) {
  auto run = [] {
    sim::FaultPlan plan;
    plan.corrupt_message("A", "B", 1, 42, sim::CorruptMode::kBitFlip);
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 3; ++i) {
      const auto d = plan.on_message("A", "B", 0);
      draws.push_back(d.corrupt ? d.corrupt_rand : 0);
    }
    return draws;
  };
  const auto a = run(), b = run();
  EXPECT_EQ(a, b);  // the stored seed replays bit-identically
  EXPECT_EQ(a[0], 0u);
  EXPECT_NE(a[1], 0u);  // index 1 corrupts
  EXPECT_EQ(a[2], 0u);
}

TEST(FaultCorrupt, CorruptLinkCoversBothDirectionsUntilHealed) {
  sim::FaultPlan plan;
  plan.corrupt_link("A", "B", 7, sim::CorruptMode::kGarbage);
  EXPECT_TRUE(plan.active());

  const auto ab1 = plan.on_message("A", "B", 0);
  const auto ab2 = plan.on_message("A", "B", 0);
  const auto ba = plan.on_message("B", "A", 0);
  EXPECT_TRUE(ab1.corrupt && ab2.corrupt && ba.corrupt);
  EXPECT_EQ(ab1.corrupt_mode, sim::CorruptMode::kGarbage);
  // Each message draws fresh noise; the two directions run distinct
  // streams (so matched request/reply frames are not mangled alike).
  EXPECT_NE(ab1.corrupt_rand, ab2.corrupt_rand);
  EXPECT_NE(ab1.corrupt_rand, ba.corrupt_rand);
  EXPECT_FALSE(plan.on_message("A", "C", 0).corrupt);

  plan.heal_link("A", "B");
  EXPECT_FALSE(plan.on_message("A", "B", 0).corrupt);
  EXPECT_FALSE(plan.on_message("B", "A", 0).corrupt);
}

// ---------------------------------------------------------------------------
// End to end: corrupted links with CRC on — every operation delivered
// exactly once (zero lost, zero duplicated dispatches).
// ---------------------------------------------------------------------------

class CountingServant : public POA_calc {
 public:
  explicit CountingServant(std::atomic<int>& calls) : calls_(&calls) {}
  double dot(const vec&, const vec&) override { return 0; }
  void scale(double, const vec&, vec&) override {}
  Long counter(Long d) override {
    ++*calls_;
    return d;
  }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  std::atomic<int>* calls_;
};

namespace {

/// One retried invocation of counter(5) through `binding` with a
/// deadline (a corrupted frame is dropped silently, so only the
/// deadline surfaces it). Returns the attempt count.
int retried_counter(Binding& binding, std::chrono::milliseconds deadline,
                    const std::function<void(int)>& on_attempt = nullptr) {
  binding.set_deadline(deadline);
  ClientRequest req(binding, "counter", false, false);
  req.in_value<Long>(5);
  auto out = std::make_shared<Long>(0);
  ft::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::milliseconds(1);
  const int attempts = ft::with_retry(binding, "counter", policy, [&](int attempt) {
    if (on_attempt) on_attempt(attempt);
    auto pending = req.invoke(attempt);
    pending->set_decoder([out](ReplyDecoder& d) { *out = d.out_value<Long>(); });
    return pending;
  });
  EXPECT_EQ(*out, 5);
  return attempts;
}

}  // namespace

class WireEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    wire::guard().reset();
    wire::set_frame_crc(1);  // the whole point: corruption must be *detected*
  }
  void TearDown() override {
    wire::set_frame_crc(-1);
    wire::set_strict(-1);
    wire::set_hello(-1);
    wire::set_bad_frame_limit(-1);
    wire::guard().reset();
  }

  sim::Testbed tb = sim::Testbed::paper_testbed();
};

TEST_F(WireEndToEnd, CorruptedRequestRedeliveredExactlyOnce) {
  transport::LocalTransport tp(&tb);
  InProcessRegistry reg;
  Orb orb(tp, reg);

  std::atomic<int> exec{0};
  rts::Domain server("wire-server", 1, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& sctx) {
    Poa poa(orb, sctx);
    CountingServant servant(exec);
    poa.activate_spmd(servant, "wire-calc");
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  ClientCtx ctx(orb);
  auto binding = bind(ctx, "wire-calc", "", calc_api::kCalcTypeId);
  // The very first request frame client→server is bit-flipped in
  // flight. CRC verification rejects it at the POA; the deadline
  // surfaces the loss and the retry delivers it.
  tb.faults().corrupt_message("", sim::Testbed::kHost2, 0, /*seed=*/31337);
  const int attempts = retried_counter(*binding, 150ms);
  EXPECT_EQ(attempts, 2);

  poa->deactivate();
  server.join();
  EXPECT_EQ(exec.load(), 1);  // zero lost, zero duplicated
  EXPECT_GE(wire::guard().bad_frames(""), 0u);  // empty peer: counted as 0
}

/// A durable accumulating counter: `counter(d)` is a non-idempotent
/// mutation; with the WAL on, a retry of a committed mutation is
/// answered from the log instead of re-running the servant.
class DurableCountingServant : public CountingServant {
 public:
  using CountingServant::CountingServant;
  bool _durable() const override { return true; }
  void _snapshot_state(CdrWriter& w) const override { w.write_long(total_); }
  void _restore_state(CdrReader& r) override { total_ = r.read_long(); }
  Long counter(Long d) override {
    CountingServant::counter(d);
    return total_ += d;
  }

 private:
  Long total_ = 0;
};

TEST_F(WireEndToEnd, CorruptedReplyAnsweredFromLogWithoutReExecution) {
  // WAL on: the mutation commits durably before its reply goes out, so
  // the retry after the corrupted reply is answered from the log.
  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "pardis-wire-reply-wal";
  std::filesystem::remove_all(scratch);
  wal::set_dir(scratch.string());
  wal::set_enabled(true);

  {
    transport::LocalTransport tp(&tb);
    InProcessRegistry reg;
    Orb orb(tp, reg);

    std::atomic<int> exec{0};
    rts::Domain server("wire-reply-server", 1, tb.host(sim::Testbed::kHost2));
    std::promise<Poa*> pp;
    auto pf = pp.get_future();
    server.start([&](rts::DomainContext& sctx) {
      Poa poa(orb, sctx);
      DurableCountingServant servant(exec);
      poa.activate_spmd(servant, "wire-reply-calc");
      pp.set_value(&poa);
      poa.impl_is_ready();
    });
    Poa* poa = pf.get();

    ClientCtx ctx(orb);
    auto binding = bind(ctx, "wire-reply-calc", "", calc_api::kCalcTypeId);
    // This time the *reply* is mangled. The client rejects it on CRC,
    // the retry re-sends the request with the retry flag, and the POA
    // answers it from the committed log record — the servant must not
    // run the mutation a second time (the reply is a prefix sum, so a
    // re-execution would also return 10, not 5).
    tb.faults().corrupt_message(sim::Testbed::kHost2, "", 0, /*seed=*/911);
    const int attempts = retried_counter(*binding, 150ms);
    EXPECT_EQ(attempts, 2);

    poa->deactivate();
    server.join();
    EXPECT_EQ(exec.load(), 1);  // answered from the log, never re-executed
  }

  wal::set_enabled(false);
  std::filesystem::remove_all(scratch);
}

TEST_F(WireEndToEnd, SpmdCorruptionRedeliveredExactlyOncePerRank) {
  transport::LocalTransport tp(&tb);
  InProcessRegistry reg;
  Orb orb(tp, reg);

  constexpr int kP = 2;
  constexpr int kQ = 2;
  std::array<std::atomic<int>, kQ> exec_counts{};

  rts::Domain server("wire-spmd-server", kQ, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& sctx) {
    Poa poa(orb, sctx);
    CountingServant servant(exec_counts[static_cast<std::size_t>(sctx.rank)]);
    poa.activate_spmd(servant, "wire-spmd-calc");
    if (sctx.rank == 0) pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  rts::Domain client("wire-spmd-client", kP, tb.host(sim::Testbed::kHost1));
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb, dctx);
    auto binding = spmd_bind(ctx, "wire-spmd-calc", "", calc_api::kCalcTypeId);
    binding->set_deadline(150ms);
    // One frame of the first P×Q request matrix is corrupted: the POA
    // drops it, the matrix never completes, every rank's deadline
    // fires, and the coordinated retry re-sends the whole matrix.
    if (dctx.rank == 0)
      tb.faults().corrupt_message(sim::Testbed::kHost1, sim::Testbed::kHost2, 0,
                                  /*seed=*/4242);
    rts::barrier(dctx.comm);

    ClientRequest req(*binding, "counter", false, false);
    req.in_value<Long>(5);
    auto out = std::make_shared<Long>(0);
    ft::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff = std::chrono::milliseconds(1);
    const int attempts = ft::with_retry(*binding, "counter", policy, [&](int attempt) {
      auto pending = req.invoke(attempt);
      pending->set_decoder([out](ReplyDecoder& d) { *out = d.out_value<Long>(); });
      return pending;
    });
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(*out, 5);
  });

  poa->deactivate();
  server.join();

  // The retry completed the matrix via body dedup: each server rank
  // dispatched exactly once — zero lost, zero duplicated.
  for (int q = 0; q < kQ; ++q)
    EXPECT_EQ(exec_counts[static_cast<std::size_t>(q)].load(), 1);
  // The corrupting "host" was noted by the guard but stayed below the
  // default quarantine limit.
  EXPECT_GE(wire::guard().bad_frames(sim::Testbed::kHost1), 1u);
  EXPECT_FALSE(wire::guard().quarantined(sim::Testbed::kHost1));
}

TEST_F(WireEndToEnd, SessionTransportCorruptLinkHealsToExactlyOnce) {
  transport::LocalTransport inner(&tb);
  flow::SessionTransport::Options opts;
  opts.enabled = true;
  opts.max_reconnects = 100;
  opts.backoff_ms = 1;
  flow::SessionTransport st(inner, opts);
  InProcessRegistry reg;
  Orb orb(st, reg);

  std::atomic<int> exec{0};
  rts::Domain server("wire-session-server", 1, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& sctx) {
    Poa poa(orb, sctx);
    CountingServant servant(exec);
    poa.activate_spmd(servant, "wire-session-calc");
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  ClientCtx ctx(orb);
  auto binding = bind(ctx, "wire-session-calc", "", calc_api::kCalcTypeId);
  // A persistently noisy link: every frame (session envelopes included)
  // is bit-flipped until the link heals. The first attempt cannot get
  // through; the retry callback heals the link before attempt 2, which
  // must deliver the op exactly once — the session layer's sequence
  // numbers discard any half-delivered leftovers.
  tb.faults().corrupt_link("", sim::Testbed::kHost2, /*seed=*/5150);
  const int attempts = retried_counter(*binding, 150ms, [&](int attempt) {
    if (attempt == 2) tb.faults().heal_link("", sim::Testbed::kHost2);
  });
  EXPECT_EQ(attempts, 2);

  poa->deactivate();
  server.join();
  EXPECT_EQ(exec.load(), 1);
}

TEST_F(WireEndToEnd, TcpCorruptionWithHelloRedeliveredExactlyOnce) {
  wire::set_hello(1);  // fresh TCP connections announce the version

  transport::TcpTransport server_tp(0, &tb);
  transport::TcpTransport client_tp(0, &tb);
  InProcessRegistry reg;
  Orb server_orb(server_tp, reg);
  Orb client_orb(client_tp, reg);

  std::atomic<int> exec{0};
  rts::Domain server("wire-tcp-server", 1, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& sctx) {
    Poa poa(server_orb, sctx);
    CountingServant servant(exec);
    poa.activate_spmd(servant, "wire-tcp-calc");
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  {
    ClientCtx ctx(client_orb);
    auto binding = bind(ctx, "wire-tcp-calc", "", calc_api::kCalcTypeId);
    // The first request payload over the socket is corrupted (the
    // transport mangles the payload before framing, as a noisy NIC
    // would). The hello exchanged at connect time is untouched — the
    // fault plan's message index 0 is the first *payload* after it.
    tb.faults().corrupt_message("", sim::Testbed::kHost2, 0, /*seed=*/8080);
    const int attempts = retried_counter(*binding, 500ms);
    EXPECT_EQ(attempts, 2);
  }

  poa->deactivate();
  server.join();
  EXPECT_EQ(exec.load(), 1);
}

TEST_F(WireEndToEnd, RepeatOffenderQuarantinedAndDropped) {
  wire::set_bad_frame_limit(1);  // one strike

  transport::LocalTransport tp(&tb);
  InProcessRegistry reg;
  Orb orb(tp, reg);

  std::atomic<int> exec{0};
  rts::Domain server("wire-quarantine-server", 1, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& sctx) {
    Poa poa(orb, sctx);
    CountingServant servant(exec);
    poa.activate_spmd(servant, "wire-quarantine-calc");
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  rts::Domain client("wire-quarantine-client", 1, tb.host(sim::Testbed::kHost1));
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb, dctx);
    auto binding = spmd_bind(ctx, "wire-quarantine-calc", "", calc_api::kCalcTypeId);
    binding->set_deadline(100ms);
    // The first corrupt frame quarantines HOST1 (limit 1); every later
    // frame from it is dropped at the server's queue, so all retries
    // expire too and the invocation fails with the deadline verdict.
    tb.faults().corrupt_message(sim::Testbed::kHost1, sim::Testbed::kHost2, 0,
                                /*seed=*/13);

    ClientRequest req(*binding, "counter", false, false);
    req.in_value<Long>(5);
    ft::RetryPolicy policy;
    policy.max_attempts = 2;
    policy.initial_backoff = std::chrono::milliseconds(1);
    EXPECT_THROW(ft::with_retry(*binding, "counter", policy,
                                [&](int attempt) {
                                  auto pending = req.invoke(attempt);
                                  pending->set_decoder([](ReplyDecoder&) {});
                                  return pending;
                                }),
                 TimeoutError);
  });

  EXPECT_TRUE(wire::guard().quarantined(sim::Testbed::kHost1));
  EXPECT_EQ(exec.load(), 0);  // nothing from the quarantined peer dispatched

  // Lift the quarantine: the host is trusted again and traffic flows.
  wire::guard().reset();
  rts::Domain client2("wire-quarantine-client2", 1, tb.host(sim::Testbed::kHost1));
  client2.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb, dctx);
    auto binding = spmd_bind(ctx, "wire-quarantine-calc", "", calc_api::kCalcTypeId);
    ClientRequest req(*binding, "counter", false, false);
    req.in_value<Long>(5);
    auto pending = req.invoke(1);
    Long out = 0;
    pending->set_decoder([&out](ReplyDecoder& d) { out = d.out_value<Long>(); });
    pending->wait();
    EXPECT_EQ(out, 5);
  });

  poa->deactivate();
  server.join();
  EXPECT_EQ(exec.load(), 1);
}

}  // namespace
}  // namespace pardis::core
