// pardis_pool tests: the health-aware Balancer (policies, quarantine,
// recovery probes), replica-group resolution, per-replica sequencing
// across select()/failover, and transparent failover of idempotent
// invocations — single-client and SPMD-coordinated — when a replica is
// killed mid-traffic.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ft/ft.hpp"
#include "pool/pool.hpp"
#include "tests/support/calc_api.hpp"

namespace pardis::pool {
namespace {

using calc_api::POA_calc;

/// Turns the pool on for one test and always restores "off" (the
/// suite's default) so neighbouring tests see pre-pool behavior.
struct PoolEnabledGuard {
  PoolEnabledGuard() { set_enabled(true); }
  ~PoolEnabledGuard() { set_enabled(false); }
};

core::ObjectRef member_ref(const std::string& name, const std::string& host,
                           std::uint64_t ep_id, int width = 1) {
  core::ObjectRef ref;
  ref.type_id = calc_api::kCalcTypeId;
  ref.name = name;
  ref.host = host;
  ref.object_id = ObjectId::next();
  for (int i = 0; i < width; ++i) {
    transport::EndpointAddr ep;
    ep.kind = transport::AddrKind::kLocal;
    ep.host_model = host;
    ep.local_id = ep_id + static_cast<std::uint64_t>(i);
    ref.thread_eps.push_back(ep);
  }
  return ref;
}

core::ReplicaGroup make_group(std::vector<core::ObjectRef> refs) {
  core::ReplicaGroup g;
  g.name = refs.front().name;
  g.epoch = 1;
  g.members = std::move(refs);
  return g;
}

PoolConfig test_cfg(Policy policy) {
  PoolConfig cfg;
  cfg.policy = policy;
  cfg.probation = std::chrono::milliseconds(25);
  cfg.overload_quarantine = std::chrono::milliseconds(25);
  return cfg;
}

// ---------------------------------------------------------------------------
// Balancer: policies, health scoring, quarantine, recovery probes.
// ---------------------------------------------------------------------------

TEST(BalancerTest, RoundRobinSpreadsPicksUniformly) {
  Balancer bal(make_group({member_ref("g", "H1", 10), member_ref("g", "H2", 20),
                           member_ref("g", "H3", 30)}),
               test_cfg(Policy::kRoundRobin));
  for (int i = 0; i < 30; ++i) (void)bal.pick();
  for (const auto& s : bal.snapshot()) EXPECT_EQ(s.picks, 10u);
}

TEST(BalancerTest, HardFailureHalvesHealthAndQuarantines) {
  const auto a = member_ref("g", "H1", 10);
  Balancer bal(make_group({a, member_ref("g", "H2", 20)}),
               test_cfg(Policy::kOverloadAware));
  bal.report_failure(a.primary_key(), ErrorCode::kCommFailure, 0);

  auto snap = bal.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].health, 0.5);
  EXPECT_EQ(snap[0].consecutive_failures, 1);
  EXPECT_TRUE(snap[0].quarantined);

  // Quarantined member takes no traffic while a sibling is healthy.
  for (int i = 0; i < 10; ++i) EXPECT_NE(bal.pick().primary_key(), a.primary_key());

  // Success lifts the quarantine and recovers health additively.
  bal.report_success(a.primary_key());
  snap = bal.snapshot();
  EXPECT_FALSE(snap[0].quarantined);
  EXPECT_DOUBLE_EQ(snap[0].health, 0.75);
  EXPECT_EQ(snap[0].consecutive_failures, 0);
}

TEST(BalancerTest, OverloadShedQuarantinesOnlyUnderOverloadAwarePolicy) {
  const auto a = member_ref("g", "H1", 10);
  const auto b = member_ref("g", "H2", 20);

  Balancer rr(make_group({a, b}), test_cfg(Policy::kRoundRobin));
  rr.report_failure(a.primary_key(), ErrorCode::kOverload, 1000);
  EXPECT_FALSE(rr.snapshot()[0].quarantined);  // rr ignores shed hints

  Balancer aware(make_group({a, b}), test_cfg(Policy::kOverloadAware));
  aware.report_failure(a.primary_key(), ErrorCode::kOverload, 1000);
  auto snap = aware.snapshot();
  EXPECT_TRUE(snap[0].quarantined);
  // A shed is pacing, not breakage: no failure streak, mild decay only.
  EXPECT_EQ(snap[0].consecutive_failures, 0);
  EXPECT_DOUBLE_EQ(snap[0].health, 0.9);
  EXPECT_NE(aware.pick().primary_key(), a.primary_key());
}

TEST(BalancerTest, ExpiredProbationGrantsOneRecoveryProbe) {
  const auto a = member_ref("g", "H1", 10);
  Balancer bal(make_group({a, member_ref("g", "H2", 20)}),
               test_cfg(Policy::kOverloadAware));
  bal.report_failure(a.primary_key(), ErrorCode::kTimeout, 0);
  EXPECT_NE(bal.pick().primary_key(), a.primary_key());

  std::this_thread::sleep_for(std::chrono::milliseconds(60));  // > 25ms probation
  // First pick after expiry is the recovery probe.
  EXPECT_EQ(bal.pick().primary_key(), a.primary_key());

  // The probe failed: re-quarantined for twice the probation.
  bal.report_failure(a.primary_key(), ErrorCode::kTimeout, 0);
  auto snap = bal.snapshot();
  EXPECT_TRUE(snap[0].quarantined);
  EXPECT_EQ(snap[0].consecutive_failures, 2);
  EXPECT_NE(bal.pick().primary_key(), a.primary_key());
}

TEST(BalancerTest, LeastInflightPrefersIdlestReplica) {
  const auto a = member_ref("g", "H1", 10);
  const auto b = member_ref("g", "H2", 20);
  const auto c = member_ref("g", "H3", 30);
  std::map<std::string, std::size_t> load{
      {a.primary_key(), 5}, {b.primary_key(), 0}, {c.primary_key(), 2}};
  Balancer bal(make_group({a, b, c}), test_cfg(Policy::kLeastInflight),
               [&](const std::string& key) { return load[key]; });
  EXPECT_EQ(bal.pick().primary_key(), b.primary_key());
  load[b.primary_key()] = 7;
  EXPECT_EQ(bal.pick().primary_key(), c.primary_key());
}

TEST(BalancerTest, AllQuarantinedPicksTheSoonestRelease) {
  const auto a = member_ref("g", "H1", 10);
  const auto b = member_ref("g", "H2", 20);
  Balancer bal(make_group({a, b}), test_cfg(Policy::kOverloadAware));
  bal.report_failure(b.primary_key(), ErrorCode::kCommFailure, 0);
  bal.report_failure(b.primary_key(), ErrorCode::kCommFailure, 0);  // 2x probation
  bal.report_failure(a.primary_key(), ErrorCode::kCommFailure, 0);
  // Availability beats pickiness: a releases first, so a is picked.
  EXPECT_EQ(bal.pick().primary_key(), a.primary_key());
}

TEST(BalancerTest, AvoidSkipsTheFailedReplicaWhenASiblingExists) {
  const auto a = member_ref("g", "H1", 10);
  const auto b = member_ref("g", "H2", 20);
  Balancer bal(make_group({a, b}), test_cfg(Policy::kRoundRobin));
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(bal.pick(a.primary_key()).primary_key(), b.primary_key());
}

TEST(BalancerTest, MismatchedServerWidthMembersAreDropped) {
  // Failover re-sends marshaled bodies, which only transfer between
  // equal-width servers — a 1-thread member cannot back a 2-thread one.
  Balancer bal(make_group({member_ref("g", "H1", 10, 2), member_ref("g", "H2", 20, 1)}),
               test_cfg(Policy::kRoundRobin));
  EXPECT_EQ(bal.size(), 1u);
}

TEST(BalancerTest, MergeKeepsHealthOfSurvivingMembers) {
  const auto a = member_ref("g", "H1", 10);
  const auto b = member_ref("g", "H2", 20);
  Balancer bal(make_group({a, b}), test_cfg(Policy::kOverloadAware));
  bal.report_failure(a.primary_key(), ErrorCode::kCommFailure, 0);

  auto fresh = make_group({a, b, member_ref("g", "H3", 30)});
  fresh.epoch = 7;
  bal.merge(fresh);
  EXPECT_EQ(bal.size(), 3u);
  EXPECT_EQ(bal.epoch(), 7u);
  auto snap = bal.snapshot();
  EXPECT_DOUBLE_EQ(snap[0].health, 0.5);  // a's history survived the merge
  EXPECT_TRUE(snap[0].quarantined);
  EXPECT_DOUBLE_EQ(snap[2].health, 1.0);  // the newcomer starts clean
}

TEST(BalancerTest, EndpointReportMapsToTheOwningMember) {
  const auto a = member_ref("g", "H1", 10, 2);
  const auto b = member_ref("g", "H2", 20, 2);
  Balancer bal(make_group({a, b}), test_cfg(Policy::kOverloadAware));
  // A redial that resumed is a mild penalty; a dead peer is hard.
  bal.report_endpoint(a.thread_eps[1], /*resumed=*/true);
  bal.report_endpoint(b.thread_eps[0], /*resumed=*/false);
  auto snap = bal.snapshot();
  EXPECT_DOUBLE_EQ(snap[0].health, 0.9);
  EXPECT_FALSE(snap[0].quarantined);
  EXPECT_DOUBLE_EQ(snap[1].health, 0.5);
  EXPECT_TRUE(snap[1].quarantined);
}

// ---------------------------------------------------------------------------
// Live replica groups: a counting servant per replica domain.
// ---------------------------------------------------------------------------

class CountingServant : public POA_calc {
 public:
  explicit CountingServant(std::atomic<int>& calls) : calls_(&calls) {}
  double dot(const calc_api::vec&, const calc_api::vec&) override { return 0; }
  void scale(double, const calc_api::vec&, calc_api::vec&) override {}
  Long counter(Long d) override {
    ++*calls_;
    return d;
  }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  std::atomic<int>* calls_;
};

/// One replica: a kQ-thread server domain whose POA joins the replica
/// group for `name` (activate_spmd with replica=true) and counts
/// per-rank servant executions.
class ReplicaServer {
 public:
  ReplicaServer(core::Orb& orb, const std::string& name, const std::string& label,
                int width, const sim::HostModel* host = nullptr)
      : domain_(label, width, host) {
    std::promise<core::Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([this, &orb, name, &pp](rts::DomainContext& sctx) {
      core::Poa poa(orb, sctx);
      CountingServant servant(calls_[static_cast<std::size_t>(sctx.rank)]);
      poa.activate_spmd(servant, name, {}, /*replica=*/true);
      if (sctx.rank == 0) pp.set_value(&poa);
      poa.impl_is_ready();
    });
    poa_ = pf.get();
  }

  ~ReplicaServer() { stop(); }

  void stop() {
    if (poa_ == nullptr) return;
    poa_->deactivate();
    domain_.join();
    poa_ = nullptr;
  }

  int calls(int rank) const { return calls_[static_cast<std::size_t>(rank)].load(); }

 private:
  std::array<std::atomic<int>, 8> calls_{};
  rts::Domain domain_;
  core::Poa* poa_ = nullptr;
};

/// One idempotent counter(value) through with_retry on the group
/// binding; returns the echoed value (-1 = no reply decoded).
Long retried_counter(const std::shared_ptr<GroupBinding>& gb, Long value,
                     const ft::RetryPolicy& policy) {
  core::ClientRequest req(*gb->binding(), "counter", false, false);
  req.in_value<Long>(value);
  auto out = std::make_shared<Long>(-1);
  ft::with_retry(*gb->binding(), "counter", policy, [&](int attempt) {
    auto pending = req.invoke(attempt);
    pending->set_decoder([out](core::ReplyDecoder& d) { *out = d.out_value<Long>(); });
    return pending;
  });
  return *out;
}

ft::RetryPolicy fast_policy() {
  ft::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::milliseconds(1);
  return policy;
}

TEST(GroupBindingTest, DisabledPoolDegradesToThePlainBindingPath) {
  transport::LocalTransport tp;
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  ReplicaServer a(orb, "deg-calc", "deg-r0", 1);

  core::ClientCtx ctx(orb);
  set_enabled(false);
  auto gb = GroupBinding::bind(ctx, "deg-calc", "", calc_api::kCalcTypeId,
                               test_cfg(Policy::kRoundRobin));
  EXPECT_TRUE(gb->degraded());
  EXPECT_EQ(gb->balancer().size(), 1u);
  // No hooks installed: ft::with_retry sees a pre-pool binding.
  EXPECT_FALSE(gb->binding()->pool_failover(ErrorCode::kCommFailure, "down", 0));
  gb->select();  // no-op
  EXPECT_EQ(gb->failovers(), 0u);

  // Resolution matches what a plain core::bind produces for the same
  // name (the registry's group fallback keeps non-pool clients working).
  auto plain = core::bind(ctx, "deg-calc", "", calc_api::kCalcTypeId);
  EXPECT_EQ(gb->binding()->ref(), plain->ref());

  EXPECT_EQ(retried_counter(gb, 41, fast_policy()), 41);
  a.stop();
  EXPECT_EQ(a.calls(0), 1);
}

TEST(GroupBindingTest, SelectRotatesReplicasWithDensePerReplicaSequences) {
  PoolEnabledGuard pool_on;
  transport::LocalTransport tp;
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  // Unmodeled hosts: empty host strings append to the group instead of
  // replacing (the same-host rule is for restarted servers).
  ReplicaServer r0(orb, "rot-calc", "rot-r0", 1);
  ReplicaServer r1(orb, "rot-calc", "rot-r1", 1);
  ReplicaServer r2(orb, "rot-calc", "rot-r2", 1);

  core::ClientCtx ctx(orb);
  auto gb = GroupBinding::bind(ctx, "rot-calc", "", calc_api::kCalcTypeId,
                               test_cfg(Policy::kRoundRobin));
  ASSERT_FALSE(gb->degraded());
  ASSERT_EQ(gb->balancer().size(), 3u);

  // Nine invocations under rotation: every one must complete — each
  // replica's POA requires a dense sequence stream per binding, so this
  // only works if retarget() parks and restores (id, seq) per replica.
  for (int i = 0; i < 9; ++i) {
    gb->select();
    EXPECT_EQ(retried_counter(gb, i, fast_policy()), i);
  }
  r0.stop();
  r1.stop();
  r2.stop();
  EXPECT_EQ(r0.calls(0), 3);
  EXPECT_EQ(r1.calls(0), 3);
  EXPECT_EQ(r2.calls(0), 3);
  std::uint64_t picks = 0;
  for (const auto& s : gb->balancer().snapshot()) picks += s.picks;
  EXPECT_EQ(picks, 9u);
}

TEST(GroupBindingTest, SingleClientFailsOverToSiblingWhenReplicaDies) {
  PoolEnabledGuard pool_on;
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  // Distinct modeled hosts: same-host re-registration would replace.
  ReplicaServer a(orb, "ha-calc", "ha-r0", 1, tb.host(sim::Testbed::kHost2));
  ReplicaServer b(orb, "ha-calc", "ha-r1", 1, tb.host(sim::Testbed::kSp2));

  core::ClientCtx ctx(orb);
  auto gb = GroupBinding::bind(ctx, "ha-calc", "", calc_api::kCalcTypeId,
                               test_cfg(Policy::kOverloadAware));
  ASSERT_EQ(gb->balancer().size(), 2u);
  const ft::RetryPolicy policy = fast_policy();

  EXPECT_EQ(retried_counter(gb, 1, policy), 1);
  EXPECT_EQ(retried_counter(gb, 2, policy), 2);

  const std::string first = gb->current().primary_key();
  for (const auto& ep : gb->current().thread_eps) tb.faults().kill_endpoint(ep.local_id);

  // The killed replica surfaces as CommFailure; with_retry offers the
  // failure to the pool, which retargets at the sibling — the requests
  // complete there with zero loss.
  EXPECT_EQ(retried_counter(gb, 3, policy), 3);
  EXPECT_EQ(retried_counter(gb, 4, policy), 4);
  EXPECT_NE(gb->current().primary_key(), first);
  EXPECT_EQ(gb->failovers(), 1u);

  a.stop();
  b.stop();
  // Two requests served by each replica: nothing lost, nothing duplicated.
  EXPECT_EQ(a.calls(0) + b.calls(0), 4);
  EXPECT_EQ(std::min(a.calls(0), b.calls(0)), 2);
}

// Satellite: SPMD-coordinated failover. One of two replicas is killed
// mid-traffic; every idempotent request completes on the sibling with
// zero duplicate dispatches and all client ranks agree on the replica.
TEST(GroupBindingTest, SpmdClientRanksAgreeOnFailoverTarget) {
  PoolEnabledGuard pool_on;
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);

  constexpr int kP = 2;          // client threads
  constexpr int kQ = 2;          // server threads per replica
  constexpr int kRequests = 6;   // collective invocations
  constexpr int kKillAfter = 3;  // kill the current replica before this one

  ReplicaServer a(orb, "spmd-ha", "spmd-ha-r0", kQ, tb.host(sim::Testbed::kHost2));
  ReplicaServer b(orb, "spmd-ha", "spmd-ha-r1", kQ, tb.host(sim::Testbed::kSp2));

  std::array<std::string, kP> final_target;
  std::array<std::uint64_t, kP> failovers{};
  std::atomic<int> killed_replica{-1};  // 0 = a, 1 = b

  rts::Domain client("spmd-ha-client", kP, tb.host(sim::Testbed::kHost1));
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb, dctx);
    auto gb = GroupBinding::spmd_bind(ctx, "spmd-ha", "", calc_api::kCalcTypeId,
                                      test_cfg(Policy::kOverloadAware));
    ASSERT_FALSE(gb->degraded());
    const ft::RetryPolicy policy = fast_policy();

    for (int i = 0; i < kRequests; ++i) {
      if (i == kKillAfter) {
        // Between collective invocations: all ranks quiesce, rank 0
        // kills every endpoint of the replica the group targets.
        rts::barrier(dctx.comm);
        if (dctx.rank == 0) {
          killed_replica.store(gb->current().host == sim::Testbed::kHost2 ? 0 : 1);
          for (const auto& ep : gb->current().thread_eps)
            tb.faults().kill_endpoint(ep.local_id);
        }
        rts::barrier(dctx.comm);
      }
      EXPECT_EQ(retried_counter(gb, i, policy), i);  // zero lost requests
    }
    final_target[static_cast<std::size_t>(dctx.rank)] = gb->current().primary_key();
    failovers[static_cast<std::size_t>(dctx.rank)] = gb->failovers();
  });

  EXPECT_EQ(final_target[0], final_target[1]);  // all ranks agree
  EXPECT_EQ(failovers[0], 1u);
  EXPECT_EQ(failovers[1], 1u);

  a.stop();
  b.stop();
  // Exactly-once per server rank on exactly one replica: the killed one
  // dispatched each pre-kill request once, the survivor the rest — a
  // duplicate or torn dispatch would break the exact counts.
  const ReplicaServer& dead = killed_replica.load() == 0 ? a : b;
  const ReplicaServer& alive = killed_replica.load() == 0 ? b : a;
  for (int q = 0; q < kQ; ++q) {
    EXPECT_EQ(dead.calls(q), kKillAfter);
    EXPECT_EQ(alive.calls(q), kRequests - kKillAfter);
  }
}

// Satellite: the resolve path the pool rides (ObjectRegistry group
// lookups) synthesizes a group of one for a plain registered name, so
// pool clients can still bind unreplicated servers.
TEST(GroupBindingTest, SingleRegisteredServerBindsAsGroupOfOne) {
  PoolEnabledGuard pool_on;
  transport::LocalTransport tp;
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);

  rts::Domain server("solo-dom", 1);
  std::promise<core::Poa*> pp;
  auto pf = pp.get_future();
  std::atomic<int> calls{0};
  server.start([&](rts::DomainContext& sctx) {
    core::Poa poa(orb, sctx);
    CountingServant servant(calls);
    poa.activate_spmd(servant, "solo-calc");  // plain, non-replica activation
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  core::Poa* poa = pf.get();

  core::ClientCtx ctx(orb);
  auto gb = GroupBinding::bind(ctx, "solo-calc", "", calc_api::kCalcTypeId,
                               test_cfg(Policy::kOverloadAware));
  EXPECT_FALSE(gb->degraded());
  EXPECT_EQ(gb->balancer().size(), 1u);
  EXPECT_EQ(retried_counter(gb, 7, fast_policy()), 7);

  poa->deactivate();
  server.join();
  EXPECT_EQ(calls.load(), 1);
}

}  // namespace
}  // namespace pardis::pool
