// Property sweep over the distributed-argument transfer engine: every
// (client width) x (server width) x (registered server-side spec)
// combination must move `in` and `out` dsequences correctly.
#include <gtest/gtest.h>

#include <future>
#include <tuple>

#include "tests/support/calc_api.hpp"

namespace pardis::core {
namespace {

using calc_api::POA_calc;
using calc_api::vec;

class ScaleImpl : public POA_calc {
 public:
  explicit ScaleImpl(rts::Communicator& comm) : comm_(&comm) {}

  double dot(const vec& a, const vec& b) override {
    double local = 0.0;
    for (std::size_t i = 0; i < a.local_size(); ++i)
      local += a.local()[i] * b.local()[i];
    return rts::allreduce_sum(*comm_, local);
  }

  void scale(double f, const vec& v, vec& r) override {
    rts::barrier(*comm_);
    for (std::size_t li = 0; li < r.local_size(); ++li)
      r.local()[li] = f * v[r.local_to_global(li)];
    rts::barrier(*comm_);
  }

  Long counter(Long d) override { return d; }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  rts::Communicator* comm_;
};

// (client threads, server threads, server spec selector, n)
using Shape = std::tuple<int, int, int, std::size_t>;

DistSpec spec_of(int selector) {
  switch (selector) {
    case 0: return DistSpec::block();
    case 1: return DistSpec::cyclic(3);
    case 2: return DistSpec::concentrated(0);
    default: return DistSpec::irregular({1.0, 2.0, 1.0});
  }
}

class TransferMatrixTest : public ::testing::TestWithParam<Shape> {};

TEST_P(TransferMatrixTest, ScaleAndDotSurviveEveryShape) {
  const auto [p, q, spec_sel, n] = GetParam();
  transport::LocalTransport tp;
  InProcessRegistry reg;
  Orb orb(tp, reg);

  std::map<std::string, std::vector<DistSpec>> specs{
      {"scale", {spec_of(spec_sel), spec_of((spec_sel + 1) % 4)}},
      {"dot", {spec_of(spec_sel), spec_of(spec_sel)}}};

  rts::Domain server("matrix-server", q);
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& ctx) {
    Poa poa(orb, ctx);
    ScaleImpl servant(ctx.comm);
    poa.activate_spmd(servant, "matrix-calc", specs);
    if (ctx.rank == 0) pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  rts::Domain client("matrix-client", p);
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb, dctx);
    auto proxy = calc_api::calc::_spmd_bind(ctx, "matrix-calc");

    // Vary the client-side layout too: cyclic in, block out.
    vec v(dctx.comm, n, dist::Distribution::cyclic(n, p, 2));
    for (std::size_t li = 0; li < v.local_size(); ++li)
      v.local()[li] = static_cast<double>(v.local_to_global(li));
    vec r(dctx.comm, n);
    proxy->scale(3.0, v, r);
    for (std::size_t li = 0; li < r.local_size(); ++li)
      EXPECT_DOUBLE_EQ(r.local()[li],
                       3.0 * static_cast<double>(r.local_to_global(li)))
          << "p=" << p << " q=" << q << " spec=" << spec_sel << " n=" << n;

    double expected = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      expected += static_cast<double>(i) * 3.0 * static_cast<double>(i);
    EXPECT_DOUBLE_EQ(proxy->dot(v, r), expected);
  });

  poa->deactivate();
  server.join();
}

INSTANTIATE_TEST_SUITE_P(Shapes, TransferMatrixTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Values(0, 1, 2, 3),
                                            ::testing::Values<std::size_t>(1, 57)));

}  // namespace
}  // namespace pardis::core
