// pardis_ft tests: deterministic fault injection, wire compatibility
// of the deadline/retry header extensions, broken futures on a dead
// server rank, and the coordinated SPMD retry protocol. Everything
// here is event-driven — faults fire at exact message indices and the
// tests never sleep to "wait for" a failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <future>
#include <memory>
#include <vector>

#include "ft/ft.hpp"
#include "tests/support/calc_api.hpp"

namespace pardis::core {
namespace {

using calc_api::POA_calc;
using calc_api::vec;

// ---------------------------------------------------------------------------
// FaultPlan: schedules fire at exact, per-link message indices.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, DropFiresAtExactIndexOnDirectedLink) {
  sim::FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.drop_message("A", "B", 2);
  EXPECT_TRUE(plan.active());

  // Indices are consumed per on_message call, in order.
  EXPECT_FALSE(plan.on_message("A", "B", 0).faulty());  // index 0
  EXPECT_FALSE(plan.on_message("A", "B", 0).faulty());  // index 1
  EXPECT_TRUE(plan.on_message("A", "B", 0).drop);       // index 2
  EXPECT_FALSE(plan.on_message("A", "B", 0).faulty());  // index 3

  // The reverse direction has its own counter and no schedule.
  plan.drop_message("C", "D", 0);
  EXPECT_FALSE(plan.on_message("D", "C", 0).faulty());
  EXPECT_TRUE(plan.on_message("C", "D", 0).drop);
}

TEST(FaultPlanTest, EachFaultKindMapsToItsDecision) {
  sim::FaultPlan plan;
  plan.fail_message("A", "B", 0);
  plan.duplicate_message("A", "B", 1);
  plan.delay_message("A", "B", 2, 0.25);

  EXPECT_TRUE(plan.on_message("A", "B", 0).fail_transient);
  EXPECT_TRUE(plan.on_message("A", "B", 0).duplicate);
  EXPECT_DOUBLE_EQ(plan.on_message("A", "B", 0).extra_delay_s, 0.25);
  EXPECT_FALSE(plan.on_message("A", "B", 0).faulty());
}

TEST(FaultPlanTest, SeverAffectsBothDirectionsFromNowOn) {
  sim::FaultPlan plan;
  plan.sever_link("A", "B");
  EXPECT_TRUE(plan.on_message("A", "B", 0).sever);
  EXPECT_TRUE(plan.on_message("B", "A", 0).sever);
  EXPECT_TRUE(plan.on_message("A", "B", 0).sever);  // permanent
  EXPECT_FALSE(plan.on_message("A", "C", 0).faulty());
}

TEST(FaultPlanTest, KilledEndpointUnreachableFromEveryLink) {
  sim::FaultPlan plan;
  plan.kill_endpoint(42);
  EXPECT_TRUE(plan.on_message("A", "B", 42).sever);
  EXPECT_TRUE(plan.on_message("X", "Y", 42).sever);
  EXPECT_FALSE(plan.on_message("A", "B", 41).faulty());
  plan.clear();
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlanTest, SeededScheduleReplaysBitIdentically) {
  auto run = [](std::uint64_t seed) {
    sim::FaultPlan plan;
    plan.seed_schedule("A", "B", seed, 0.3, 64);
    std::vector<bool> drops;
    for (int i = 0; i < 64; ++i) drops.push_back(plan.on_message("A", "B", 0).drop);
    return drops;
  };
  const auto a = run(1234), b = run(1234), c = run(5678);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
  // p=0.3 over 64 messages: some but not all dropped.
  const auto dropped = std::count(a.begin(), a.end(), true);
  EXPECT_GT(dropped, 0);
  EXPECT_LT(dropped, 64);
}

// ---------------------------------------------------------------------------
// Wire compatibility: a deadline-free, retry-free, untraced header is
// byte-identical to the pre-ft PIOP format.
// ---------------------------------------------------------------------------

TEST(FtWireCompat, FaultFreeRequestHeaderBytesUnchanged) {
  RequestHeader h;
  h.request_id.value = 7;
  h.binding_id = 3;
  h.seq_no = 2;
  h.object_id.value = 9;
  h.operation = "solve";
  h.flags = kFlagCollective;
  h.client_rank = 1;
  h.client_size = 2;
  h.reply_to.kind = transport::AddrKind::kLocal;
  h.reply_to.host_model = "HOST1";
  h.reply_to.local_id = 4;

  ByteBuffer now;
  CdrWriter w(now);
  h.marshal(w);

  // The pre-ft wire format, written field by field by hand.
  ByteBuffer old;
  CdrWriter ow(old);
  ow.write_ulonglong(7);   // request_id
  ow.write_ulonglong(3);   // binding_id
  ow.write_ulong(2);       // seq_no
  ow.write_ulonglong(9);   // object_id
  ow.write_string("solve");
  ow.write_octet(kFlagCollective);
  ow.write_long(1);        // client_rank
  ow.write_long(2);        // client_size
  h.reply_to.marshal(ow);

  EXPECT_EQ(now, old);
}

TEST(FtWireCompat, DeadlineAndAttemptRoundTripAndClearFlags) {
  RequestHeader h;
  h.operation = "solve";
  h.deadline_ms = 250;
  h.attempt = 2;
  ByteBuffer buf;
  CdrWriter w(buf);
  h.marshal(w);
  CdrReader r(buf.view());
  RequestHeader back = RequestHeader::unmarshal(r);
  EXPECT_EQ(back.deadline_ms, 250u);
  EXPECT_EQ(back.attempt, 2u);
  EXPECT_TRUE(back.retry());
  // The marker bits are cleared on unmarshal, like kFlagTraced.
  EXPECT_EQ(back.flags & (kFlagDeadline | kFlagRetry), 0);
}

// ---------------------------------------------------------------------------
// with_retry mechanics on a standalone binding (no server involved).
// ---------------------------------------------------------------------------

class FtRetryUnit : public ::testing::Test {
 protected:
  transport::LocalTransport tp_;
  InProcessRegistry reg_;
  Orb orb_{tp_, reg_};
  ClientCtx ctx_{orb_};
  Binding binding_{ctx_, ObjectRef{}, /*collective=*/false, /*id=*/1};
  ft::RetryPolicy policy_ = [] {
    ft::RetryPolicy p;
    p.max_attempts = 3;
    p.initial_backoff = std::chrono::milliseconds(1);
    return p;
  }();
};

TEST_F(FtRetryUnit, FirstAttemptSuccessUsesOneAttempt) {
  int calls = 0;
  const int attempts = ft::with_retry(binding_, "op", policy_, [&](int attempt) {
    ++calls;
    EXPECT_EQ(attempt, 1);
    return std::shared_ptr<PendingReply>();  // oneway shape: nothing to wait on
  });
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(calls, 1);
}

TEST_F(FtRetryUnit, NonRetryableErrorRethrownWithoutRetry) {
  int calls = 0;
  EXPECT_THROW(ft::with_retry(binding_, "op", policy_,
                              [&](int) -> std::shared_ptr<PendingReply> {
                                ++calls;
                                throw BadParam("not transient");
                              }),
               BadParam);
  EXPECT_EQ(calls, 1);
}

TEST_F(FtRetryUnit, TransientErrorRetriedUntilAttemptsExhausted) {
  int calls = 0;
  EXPECT_THROW(ft::with_retry(binding_, "op", policy_,
                              [&](int) -> std::shared_ptr<PendingReply> {
                                ++calls;
                                throw TransientError("still down");
                              }),
               TransientError);
  EXPECT_EQ(calls, policy_.max_attempts);
}

TEST_F(FtRetryUnit, TransientErrorHealedOnSecondAttempt) {
  int calls = 0;
  const int attempts =
      ft::with_retry(binding_, "op", policy_, [&](int) -> std::shared_ptr<PendingReply> {
        if (++calls == 1) throw TransientError("first send lost");
        return nullptr;
      });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(calls, 2);
}

TEST(FtBackoff, ExponentialWithDeterministicJitter) {
  ft::RetryPolicy p;
  p.initial_backoff = std::chrono::milliseconds(8);
  p.multiplier = 2.0;
  p.jitter = 0.5;
  // Deterministic: same inputs, same delay.
  EXPECT_EQ(ft::backoff_delay(p, 1, 99), ft::backoff_delay(p, 1, 99));
  // Bounded: base <= delay <= base * (1 + jitter).
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const auto base = std::chrono::milliseconds(8 << (attempt - 1));
    const auto d = ft::backoff_delay(p, attempt, 7);
    EXPECT_GE(d, base);
    EXPECT_LE(d, base + std::chrono::milliseconds(base.count() / 2 + 1));
  }
}

// ---------------------------------------------------------------------------
// Broken futures: a server rank killed mid-invocation fails every
// future bound to it with CommFailure — no hang, no sleeps.
// ---------------------------------------------------------------------------

/// calc servant whose counter() blocks until the test opens the gate,
/// so replies are provably still outstanding when the rank is killed.
class GatedServant : public POA_calc {
 public:
  explicit GatedServant(std::shared_future<void> gate) : gate_(std::move(gate)) {}
  double dot(const vec&, const vec&) override { return 0; }
  void scale(double, const vec&, vec&) override {}
  Long counter(Long d) override {
    gate_.wait();
    return d;
  }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  std::shared_future<void> gate_;
};

TEST(FtBrokenFutures, KilledRankFailsEveryBoundFuture) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  InProcessRegistry reg;
  Orb orb(tp, reg);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();

  rts::Domain server("ft-dead", 2, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& sctx) {
    Poa poa(orb, sctx);
    GatedServant servant(opened);
    poa.activate_spmd(servant, "dead-calc");
    if (sctx.rank == 0) pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  // Client on an unmodeled host: different modeled host than the
  // server, so the collocation bypass does not apply and every message
  // takes the (fault-injectable) transport path.
  ClientCtx ctx(orb);
  auto proxy = calc_api::calc::_bind(ctx, "dead-calc");
  Future<Long> f1, f2;
  proxy->counter_nb(1, f1);
  proxy->counter_nb(2, f2);

  // Both invocations are in flight (servants gate-blocked). Kill the
  // rank the replies must come from: the next liveness probe observes
  // CommFailure and fails every pending invocation bound to the peer.
  tb.faults().kill_endpoint(proxy->_binding()->ref().thread_eps[0].local_id);
  EXPECT_THROW(f1.get(), CommFailure);
  EXPECT_THROW(f2.get(), CommFailure);

  // The server itself is healthy; release it and shut down cleanly.
  gate.set_value();
  poa->deactivate();
  server.join();
}

// ---------------------------------------------------------------------------
// Coordinated SPMD retry: one injected transient send failure, and the
// whole P×Q matrix is re-sent exactly once with every client rank
// agreeing — the servant still executes exactly once per server rank.
// ---------------------------------------------------------------------------

class CountingServant : public POA_calc {
 public:
  explicit CountingServant(std::atomic<int>& calls) : calls_(&calls) {}
  double dot(const vec&, const vec&) override { return 0; }
  void scale(double, const vec&, vec&) override {}
  Long counter(Long d) override {
    ++*calls_;
    return d;
  }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  std::atomic<int>* calls_;
};

TEST(FtCoordinatedRetry, AllRanksAgreeOnExactlyOneRetry) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  InProcessRegistry reg;
  Orb orb(tp, reg);

  constexpr int kP = 2;  // client threads
  constexpr int kQ = 2;  // server threads
  std::array<std::atomic<int>, kQ> exec_counts{};

  rts::Domain server("ft-retry-server", kQ, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& sctx) {
    Poa poa(orb, sctx);
    CountingServant servant(exec_counts[static_cast<std::size_t>(sctx.rank)]);
    poa.activate_spmd(servant, "retry-calc");
    if (sctx.rank == 0) pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  rts::Domain client("ft-retry-client", kP, tb.host(sim::Testbed::kHost1));
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb, dctx);
    auto binding = spmd_bind(ctx, "retry-calc", "", calc_api::kCalcTypeId);
    // Message #0 on the HOST1→HOST2 link — the first request frame any
    // client thread sends — fails at the sender with TransientError.
    if (dctx.rank == 0) tb.faults().fail_message("HOST1", "HOST2", 0);
    rts::barrier(dctx.comm);

    ClientRequest req(*binding, "counter", false, false);
    req.in_value<Long>(5);
    auto out = std::make_shared<Long>(0);
    ft::RetryPolicy policy;
    policy.initial_backoff = std::chrono::milliseconds(1);
    const int attempts =
        ft::with_retry(*binding, "counter", policy, [&](int attempt) {
          auto pending = req.invoke(attempt);
          pending->set_decoder(
              [out](ReplyDecoder& d) { *out = d.out_value<Long>(); });
          return pending;
        });
    // Every rank used exactly two attempts — including the rank whose
    // own sends all succeeded; it joined the retry via the agreement.
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(*out, 5);
  });

  poa->deactivate();
  server.join();

  // The first attempt's matrix was incomplete (one row missing), so no
  // server rank dispatched it; the retry completed the assembly via
  // body dedup and each rank executed the servant exactly once.
  for (int q = 0; q < kQ; ++q) EXPECT_EQ(exec_counts[static_cast<std::size_t>(q)].load(), 1);
}

}  // namespace
}  // namespace pardis::core
