// Transport layer: local loopback and TCP remote service requests.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "sim/clock.hpp"
#include "transport/tcp_transport.hpp"
#include "transport/transport.hpp"

namespace pardis::transport {
namespace {

ByteBuffer text_payload(const std::string& s) {
  ByteBuffer b;
  CdrWriter w(b);
  w.write_string(s);
  return b;
}

std::string text_of(const RsrMessage& m) {
  CdrReader r(m.payload.view(), m.little_endian);
  return r.read_string();
}

TEST(EndpointAddrTest, CdrRoundTrip) {
  EndpointAddr a;
  a.kind = AddrKind::kTcp;
  a.host_model = "HOST2";
  a.tcp_host = "127.0.0.1";
  a.tcp_port = 4321;
  a.tcp_ep = 17;
  ByteBuffer buf = cdr_encode(a);
  EXPECT_EQ(cdr_decode<EndpointAddr>(buf.view()), a);
  EXPECT_NE(a.to_string().find("HOST2"), std::string::npos);
}

TEST(LocalTransportTest, RsrDeliversToEndpointQueue) {
  LocalTransport t;
  auto ep = t.create_endpoint("");
  EXPECT_FALSE(ep->poll().has_value());
  t.rsr(ep->addr(), kHandlerOrbRequest, text_payload("ping"), "");
  auto msg = ep->poll();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->handler, kHandlerOrbRequest);
  EXPECT_EQ(text_of(*msg), "ping");
}

TEST(LocalTransportTest, RsrToDeadEndpointThrows) {
  LocalTransport t;
  EndpointAddr addr;
  {
    auto ep = t.create_endpoint("");
    addr = ep->addr();
  }
  EXPECT_THROW(t.rsr(addr, 1, ByteBuffer{}, ""), CommFailure);
}

TEST(LocalTransportTest, FifoDeliveryOrder) {
  LocalTransport t;
  auto ep = t.create_endpoint("");
  for (int i = 0; i < 50; ++i) t.rsr(ep->addr(), 1, text_payload(std::to_string(i)), "");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(text_of(*ep->poll()), std::to_string(i));
}

TEST(LocalTransportTest, WaitBlocksUntilDelivery) {
  LocalTransport t;
  auto ep = t.create_endpoint("");
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    t.rsr(ep->addr(), 2, text_payload("late"), "");
  });
  RsrMessage msg = ep->wait();
  EXPECT_EQ(text_of(msg), "late");
  sender.join();
}

TEST(LocalTransportTest, WaitForTimesOut) {
  LocalTransport t;
  auto ep = t.create_endpoint("");
  auto res = ep->wait_for(std::chrono::milliseconds(10));
  EXPECT_EQ(res.status, WaitStatus::kTimeout);
  EXPECT_FALSE(res.message.has_value());
}

TEST(LocalTransportTest, WaitForReportsCloseDistinctFromTimeout) {
  LocalTransport t;
  auto ep = t.create_endpoint("");
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ep->close();
  });
  auto res = ep->wait_for(std::chrono::seconds(5));
  EXPECT_EQ(res.status, WaitStatus::kClosed);
  EXPECT_FALSE(res.message.has_value());
  closer.join();
}

TEST(TransportTest, WaitForDeadlineSurvivesSpuriousWakeups) {
  // Two waiters share the classic mutex+condvar endpoint queue; one
  // message wakes both (notify_all). The loser's re-wait must run
  // against the deadline computed ONCE at entry — a rewait that
  // recomputes "now + timeout" on every wakeup would stretch the
  // losing waiter to ~120ms + 250ms instead of releasing it at 250ms.
  using namespace std::chrono_literals;
  LocalTransport t;
  auto ep = t.create_endpoint("");
  const auto t0 = std::chrono::steady_clock::now();
  auto waiter = [&] { return ep->wait_for(250ms); };
  auto f1 = std::async(std::launch::async, waiter);
  auto f2 = std::async(std::launch::async, waiter);
  std::this_thread::sleep_for(120ms);
  t.rsr(ep->addr(), kHandlerOrbRequest, text_payload("wake"), "");
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ((r1.status == WaitStatus::kMessage) +
                (r2.status == WaitStatus::kMessage),
            1);
  EXPECT_EQ(r1.timed_out() + r2.timed_out(), 1);
  EXPECT_LT(elapsed, 360ms);
}

TEST(LocalTransportTest, CloseWakesWaiters) {
  LocalTransport t;
  auto ep = t.create_endpoint("");
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ep->close();
  });
  EXPECT_THROW(ep->wait(), CommFailure);
  closer.join();
}

TEST(LocalTransportTest, LinkModelChargesVirtualTime) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  LocalTransport t(&tb);
  auto ep = t.create_endpoint(sim::Testbed::kHost2);

  sim::SimClock sender, receiver;
  const std::size_t bytes = [&] {
    sim::ClockBinding bind(sender);
    sim::charge_seconds(1.0);
    ByteBuffer payload;
    payload.grow(17000);  // ~1ms at ATM bandwidth (17 MB/s)
    const std::size_t n = payload.size();
    t.rsr(ep->addr(), 1, std::move(payload), sim::Testbed::kHost1);
    return n;
  }();
  // The sender is occupied for the modeled transfer...
  const double expected = 1.0 + tb.link("HOST1", "HOST2").delay(bytes);
  EXPECT_DOUBLE_EQ(sender.now(), expected);
  // ...and the receiver cannot see the message earlier than that.
  sim::ClockBinding bind(receiver);
  auto msg = ep->poll();
  ASSERT_TRUE(msg.has_value());
  EXPECT_DOUBLE_EQ(msg->sim_time, expected);
  EXPECT_DOUBLE_EQ(receiver.now(), expected);
}

TEST(LocalTransportTest, NoTestbedMeansNoCharging) {
  LocalTransport t;
  auto ep = t.create_endpoint("X");
  sim::SimClock clock;
  sim::ClockBinding bind(clock);
  t.rsr(ep->addr(), 1, ByteBuffer{}, "Y");
  EXPECT_DOUBLE_EQ(ep->poll()->sim_time, 0.0);
}

class TcpTransportTest : public ::testing::Test {
 protected:
  TcpTransport server_{0};
  TcpTransport client_{0};
};

TEST_F(TcpTransportTest, RoundTripOverRealSockets) {
  auto ep = server_.create_endpoint("");
  ASSERT_NE(server_.port(), 0);
  client_.rsr(ep->addr(), kHandlerOrbRequest, text_payload("over tcp"), "");
  RsrMessage msg = ep->wait();
  EXPECT_EQ(msg.handler, kHandlerOrbRequest);
  EXPECT_EQ(text_of(msg), "over tcp");
}

TEST_F(TcpTransportTest, ManyMessagesKeepOrderPerSender) {
  auto ep = server_.create_endpoint("");
  for (int i = 0; i < 200; ++i)
    client_.rsr(ep->addr(), 1, text_payload(std::to_string(i)), "");
  for (int i = 0; i < 200; ++i) EXPECT_EQ(text_of(ep->wait()), std::to_string(i));
}

TEST_F(TcpTransportTest, LargePayload) {
  auto ep = server_.create_endpoint("");
  ByteBuffer big;
  CdrWriter w(big);
  std::vector<double> values(100000);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i) * 0.5;
  w.write_prim_seq<double>(values);
  client_.rsr(ep->addr(), 7, std::move(big), "");
  RsrMessage msg = ep->wait();
  CdrReader r(msg.payload.view(), msg.little_endian);
  EXPECT_EQ(r.read_prim_seq<double>(), values);
}

TEST_F(TcpTransportTest, MultipleEndpointsRouteById) {
  auto ep1 = server_.create_endpoint("");
  auto ep2 = server_.create_endpoint("");
  client_.rsr(ep2->addr(), 1, text_payload("two"), "");
  client_.rsr(ep1->addr(), 1, text_payload("one"), "");
  EXPECT_EQ(text_of(ep1->wait()), "one");
  EXPECT_EQ(text_of(ep2->wait()), "two");
  EXPECT_EQ(ep1->pending(), 0u);
}

TEST_F(TcpTransportTest, UnknownEndpointIsDroppedNotFatal) {
  auto ep = server_.create_endpoint("");
  EndpointAddr ghost = ep->addr();
  ghost.tcp_ep = 9999;
  client_.rsr(ghost, 1, text_payload("ghost"), "");
  client_.rsr(ep->addr(), 1, text_payload("real"), "");
  EXPECT_EQ(text_of(ep->wait()), "real");
}

TEST_F(TcpTransportTest, ConcurrentSendersInterleaveSafely) {
  auto ep = server_.create_endpoint("");
  constexpr int kThreads = 4, kEach = 100;
  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t)
    senders.emplace_back([this, &ep, t] {
      for (int i = 0; i < kEach; ++i)
        client_.rsr(ep->addr(), static_cast<HandlerId>(t + 1),
                    text_payload(std::to_string(i)), "");
    });
  std::vector<int> next(kThreads, 0);
  for (int n = 0; n < kThreads * kEach; ++n) {
    RsrMessage m = ep->wait();
    const int t = static_cast<int>(m.handler) - 1;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(text_of(m), std::to_string(next[t]));  // per-sender frames stay intact
    ++next[t];
  }
  for (auto& s : senders) s.join();
}

TEST(TcpTransportLifecycle, ConnectToClosedPortThrows) {
  UShort dead_port;
  {
    TcpTransport temp(0);
    dead_port = temp.port();
  }
  TcpTransport client(0);
  EndpointAddr addr;
  addr.kind = AddrKind::kTcp;
  addr.tcp_host = "127.0.0.1";
  addr.tcp_port = dead_port;
  addr.tcp_ep = 1;
  EXPECT_THROW(client.rsr(addr, 1, ByteBuffer{}, ""), CommFailure);
}

TEST(TcpTransportLifecycle, ShutdownIsIdempotent) {
  TcpTransport t(0);
  auto ep = t.create_endpoint("");
  t.shutdown();
  t.shutdown();
}

}  // namespace
}  // namespace pardis::transport
