// DSequence: collective construction, location transparency,
// no-ownership storage, redistribution, encode/decode ranges.
#include <gtest/gtest.h>

#include <numeric>

#include "dist/dsequence.hpp"
#include "rts/domain.hpp"

namespace pardis::dist {
namespace {

void fill_by_global_index(DSequence<double>& seq) {
  for (std::size_t li = 0; li < seq.local_size(); ++li)
    seq.local()[li] = static_cast<double>(seq.local_to_global(li));
}

TEST(DSequenceTest, CollectiveCreateAndLocalFill) {
  rts::Domain d("dseq", 4);
  d.run([](rts::DomainContext& ctx) {
    DSequence<double> seq(ctx.comm, 1024);
    EXPECT_EQ(seq.size(), 1024u);
    EXPECT_EQ(seq.distribution().kind(), DistKind::kBlock);
    EXPECT_EQ(seq.local_size(), 256u);
    fill_by_global_index(seq);
    rts::barrier(ctx.comm);
    // Location-transparent reads of everything, local or not.
    for (std::size_t g = 0; g < 1024u; g += 37)
      EXPECT_EQ(seq[g], static_cast<double>(g));
    rts::barrier(ctx.comm);
  });
}

TEST(DSequenceTest, GatherAllAssemblesGlobalContents) {
  rts::Domain d("gather", 3);
  d.run([](rts::DomainContext& ctx) {
    DSequence<double> seq(ctx.comm, 100, Distribution::cyclic(100, 3, 7));
    fill_by_global_index(seq);
    auto all = seq.gather_all();
    ASSERT_EQ(all.size(), 100u);
    for (std::size_t g = 0; g < 100; ++g) EXPECT_EQ(all[g], static_cast<double>(g));
  });
}

TEST(DSequenceTest, NoOwnershipConstructorAliasesCallerStorage) {
  rts::Domain d("borrow", 2);
  d.run([](rts::DomainContext& ctx) {
    Distribution dist = Distribution::block(10, 2);
    std::vector<double> mine(dist.local_count(ctx.rank), -1.0);
    {
      DSequence<double> seq(ctx.comm, 10, dist, std::span<double>(mine));
      fill_by_global_index(seq);
      rts::barrier(ctx.comm);
    }
    // Writes went straight to caller storage.
    const std::size_t base = ctx.rank == 0 ? 0 : 5;
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(mine[i], static_cast<double>(base + i));
  });
}

TEST(DSequenceTest, BorrowedStorageSizeMismatchThrows) {
  rts::Domain d("borrowbad", 2);
  EXPECT_THROW(d.run([](rts::DomainContext& ctx) {
    std::vector<double> wrong(3);
    DSequence<double> seq(ctx.comm, 10, Distribution::block(10, 2),
                          std::span<double>(wrong));
  }),
               BadParam);
}

TEST(DSequenceTest, LocalRefRejectsRemoteElements) {
  rts::Domain d("localref", 2);
  d.run([](rts::DomainContext& ctx) {
    DSequence<double> seq(ctx.comm, 8);
    const std::size_t mine = ctx.rank == 0 ? 0 : 7;
    const std::size_t theirs = ctx.rank == 0 ? 7 : 0;
    EXPECT_NO_THROW(seq.local_ref(mine) = 1.0);
    EXPECT_THROW(seq.local_ref(theirs), BadParam);
    rts::barrier(ctx.comm);
  });
}

TEST(DSequenceTest, NonDistributedSingleMode) {
  DSequence<double> seq(16);
  EXPECT_FALSE(seq.distributed());
  EXPECT_EQ(seq.local_size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) seq.local()[i] = static_cast<double>(i * i);
  EXPECT_EQ(seq[9], 81.0);
  auto all = seq.gather_all();
  EXPECT_EQ(all[4], 16.0);
}

struct RedistCase {
  const char* name;
  Distribution from;
  Distribution to;
};

class DSequenceRedistributeTest : public ::testing::TestWithParam<int> {};

TEST_P(DSequenceRedistributeTest, RedistributePreservesContents) {
  constexpr std::size_t kN = 211;
  constexpr int kRanks = 4;
  const std::vector<RedistCase> cases{
      {"block->concentrated", Distribution::block(kN, kRanks),
       Distribution::concentrated(kN, kRanks, 0)},
      {"concentrated->block", Distribution::concentrated(kN, kRanks, 2),
       Distribution::block(kN, kRanks)},
      {"block->cyclic", Distribution::block(kN, kRanks), Distribution::cyclic(kN, kRanks, 5)},
      {"cyclic->irregular", Distribution::cyclic(kN, kRanks, 3),
       Distribution::irregular(kN, {4.0, 1.0, 1.0, 2.0})},
      {"irregular->block", Distribution::irregular(kN, {0.0, 1.0, 0.0, 1.0}),
       Distribution::block(kN, kRanks)},
  };
  const RedistCase& tc = cases[GetParam()];

  rts::Domain d("redist", kRanks);
  d.run([&tc](rts::DomainContext& ctx) {
    DSequence<double> seq(ctx.comm, kN, tc.from);
    fill_by_global_index(seq);
    seq.redistribute(tc.to);
    EXPECT_EQ(seq.distribution(), tc.to);
    EXPECT_EQ(seq.local_size(), tc.to.local_count(ctx.rank));
    // Every element survived the move with its value intact.
    for (std::size_t li = 0; li < seq.local_size(); ++li)
      EXPECT_EQ(seq.local()[li], static_cast<double>(seq.local_to_global(li))) << tc.name;
    // Round-trip back to the original distribution.
    seq.redistribute(tc.from);
    for (std::size_t li = 0; li < seq.local_size(); ++li)
      EXPECT_EQ(seq.local()[li], static_cast<double>(seq.local_to_global(li))) << tc.name;
  });
}

INSTANTIATE_TEST_SUITE_P(Cases, DSequenceRedistributeTest, ::testing::Range(0, 5));

TEST(DSequenceTest, RedistributeSizeMismatchThrows) {
  rts::Domain d("redistbad", 2);
  EXPECT_THROW(d.run([](rts::DomainContext& ctx) {
    DSequence<double> seq(ctx.comm, 10);
    seq.redistribute(Distribution::block(11, 2));
  }),
               BadParam);
}

TEST(DSequenceTest, EncodeDecodeRangeRoundTrip) {
  rts::Domain d("encdec", 2);
  d.run([](rts::DomainContext& ctx) {
    DSequence<double> seq(ctx.comm, 20);
    fill_by_global_index(seq);
    if (ctx.rank == 0) {
      ByteBuffer buf = seq.encode_range({2, 8});
      // Wipe and restore.
      for (std::size_t g = 2; g < 8; ++g) seq.local_ref(g) = 0.0;
      CdrReader r(buf.view());
      seq.decode_range({2, 8}, r);
      for (std::size_t g = 2; g < 8; ++g) EXPECT_EQ(seq[g], static_cast<double>(g));
      // Encoding a range we do not own is an error.
      EXPECT_THROW(seq.encode_range({8, 12}), BadParam);
    }
    rts::barrier(ctx.comm);
  });
}

TEST(DSequenceTest, NestedElementTypeRoundTrips) {
  // matrix-style dsequence of dynamically-sized rows (paper §4.1).
  rts::Domain d("nested", 2);
  d.run([](rts::DomainContext& ctx) {
    using Row = std::vector<double>;
    DSequence<Row> seq(ctx.comm, 6);
    for (std::size_t li = 0; li < seq.local_size(); ++li) {
      const std::size_t g = seq.local_to_global(li);
      seq.local()[li] = Row(g + 1, static_cast<double>(g));
    }
    seq.redistribute(Distribution::concentrated(6, 2, 0));
    if (ctx.rank == 0) {
      for (std::size_t g = 0; g < 6; ++g) {
        EXPECT_EQ(seq.local()[g].size(), g + 1);
        if (g > 0) {
          EXPECT_EQ(seq.local()[g][0], static_cast<double>(g));
        }
      }
    }
    rts::barrier(ctx.comm);
  });
}

TEST(DSequenceTest, MoveTransfersDirectoryMembership) {
  rts::Domain d("move", 2);
  d.run([](rts::DomainContext& ctx) {
    DSequence<double> seq(ctx.comm, 10);
    fill_by_global_index(seq);
    rts::barrier(ctx.comm);
    DSequence<double> moved = std::move(seq);
    EXPECT_EQ(moved[3], 3.0);
    rts::barrier(ctx.comm);
  });
}

}  // namespace
}  // namespace pardis::dist
