// End-to-end ORB tests over the hand-written calc stub/skeleton —
// single and SPMD objects, blocking and non-blocking invocations,
// distributed arguments, sequencing, collocation, error paths, TCP.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>

#include "tests/support/calc_api.hpp"

namespace pardis::core {
namespace {

using calc_api::POA_calc;
using calc_api::vec;
using calc_api::vec_var;

/// Test servant. For SPMD activation one instance lives on each server
/// thread; cross-thread state (counter, note log) is shared.
class CalcImpl : public POA_calc {
 public:
  struct Shared {
    std::atomic<Long> counter{0};
    std::mutex mutex;
    std::vector<Long> counter_log;
    std::vector<std::string> notes;
  };

  CalcImpl(Shared& shared, rts::Communicator* comm) : shared_(&shared), comm_(comm) {}

  double dot(const vec& a, const vec& b) override {
    if (a.size() != b.size()) throw BadParam("dot: length mismatch");
    double local = 0.0;
    for (std::size_t i = 0; i < a.local_size(); ++i) local += a.local()[i] * b.local()[i];
    // b may be distributed differently than a; accumulate via a's layout
    // only when the layouts agree — otherwise go through gather_all.
    if (!(a.distribution() == b.distribution())) {
      auto av = a.gather_all();
      auto bv = b.gather_all();
      local = 0.0;
      if (comm_ == nullptr || comm_->rank() == 0)
        local = std::inner_product(av.begin(), av.end(), bv.begin(), 0.0);
    }
    return comm_ != nullptr ? rts::allreduce_sum(*comm_, local) : local;
  }

  void scale(double factor, const vec& v, vec& r) override {
    if (v.size() != r.size()) throw BadParam("scale: result length mismatch");
    // Write through location transparency: each rank fills its own
    // part of r from (possibly remote) elements of v.
    if (comm_ != nullptr) rts::barrier(*comm_);
    for (std::size_t li = 0; li < r.local_size(); ++li) {
      const std::size_t g = r.local_to_global(li);
      r.local()[li] = factor * v[g];
    }
    if (comm_ != nullptr) rts::barrier(*comm_);
  }

  Long counter(Long delta) override {
    // SPMD dispatch runs on every server thread; only rank 0 mutates
    // the shared state (its return value is the one the client sees).
    if (comm_ != nullptr && comm_->rank() != 0) return 0;
    const Long value = shared_->counter.fetch_add(delta) + delta;
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->counter_log.push_back(delta);
    return value;
  }

  void note(const std::string& msg) override {
    if (comm_ != nullptr && comm_->rank() != 0) return;
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->notes.push_back(msg);
  }

  void boom(const std::string& msg) override { throw BadParam("boom: " + msg); }

 private:
  Shared* shared_;
  rts::Communicator* comm_;
};

/// An SPMD calc server running in the background until destroyed.
class CalcServer {
 public:
  CalcServer(Orb& orb, int nthreads, const std::string& name,
             std::map<std::string, std::vector<DistSpec>> specs = {},
             const sim::HostModel* host = nullptr, bool with_singles = false)
      : domain_("calc-server", nthreads, host) {
    std::promise<Poa*> poa_promise;
    auto poa_future = poa_promise.get_future();
    domain_.start([this, &orb, name, specs, with_singles, &poa_promise](
                      rts::DomainContext& ctx) {
      Poa poa(orb, ctx);
      CalcImpl servant(shared_, &ctx.comm);
      poa.activate_spmd(servant, name, specs);
      CalcImpl single_servant(shared_, nullptr);
      if (with_singles)
        poa.activate_single(single_servant, name + ".single" + std::to_string(ctx.rank));
      // All ranks' objects must be registered before the client is
      // told the server is up.
      rts::barrier(ctx.comm);
      if (ctx.rank == 0) poa_promise.set_value(&poa);
      poa.impl_is_ready();
    });
    poa_ = poa_future.get();
  }

  ~CalcServer() {
    poa_->deactivate();
    domain_.join();
  }

  CalcImpl::Shared& shared() { return shared_; }

 private:
  CalcImpl::Shared shared_;
  rts::Domain domain_;
  Poa* poa_ = nullptr;
};

vec make_seq(rts::Communicator& comm, std::size_t n, double scale_v = 1.0) {
  vec s(comm, n);
  for (std::size_t li = 0; li < s.local_size(); ++li)
    s.local()[li] = scale_v * static_cast<double>(s.local_to_global(li));
  return s;
}

class OrbFixture : public ::testing::Test {
 protected:
  transport::LocalTransport transport_;
  InProcessRegistry registry_;
  Orb orb_{transport_, registry_};
};

TEST_F(OrbFixture, SingleClientSingleObjectBlockingCalls) {
  CalcServer server(orb_, 1, "calc1");
  ClientCtx ctx(orb_);
  auto proxy = calc_api::calc::_bind(ctx, "calc1", "");
  EXPECT_EQ(proxy->counter(5), 5);
  EXPECT_EQ(proxy->counter(3), 8);
  EXPECT_EQ(proxy->counter(-8), 0);
}

TEST_F(OrbFixture, OnewayNoteIsDeliveredWithoutReply) {
  CalcServer server(orb_, 1, "calc-ow");
  ClientCtx ctx(orb_);
  auto proxy = calc_api::calc::_bind(ctx, "calc-ow", "");
  proxy->note("fire and forget");
  proxy->note("second");
  // A blocking call afterwards acts as a fence: sequencing guarantees
  // the oneways dispatched first.
  proxy->counter(1);
  std::lock_guard<std::mutex> lock(server.shared().mutex);
  ASSERT_EQ(server.shared().notes.size(), 2u);
  EXPECT_EQ(server.shared().notes[0], "fire and forget");
  EXPECT_EQ(server.shared().notes[1], "second");
}

TEST_F(OrbFixture, ServerExceptionPropagatesToClient) {
  CalcServer server(orb_, 1, "calc-err");
  ClientCtx ctx(orb_);
  auto proxy = calc_api::calc::_bind(ctx, "calc-err", "");
  try {
    proxy->boom("kapow");
    FAIL() << "expected BadParam";
  } catch (const BadParam& e) {
    EXPECT_NE(std::string(e.what()).find("kapow"), std::string::npos);
  }
  // The binding stays usable after a failed invocation.
  EXPECT_EQ(proxy->counter(2), 2);
}

TEST_F(OrbFixture, UnknownOperationIsNoImplement) {
  CalcServer server(orb_, 1, "calc-noimpl");
  ClientCtx ctx(orb_);
  auto proxy = calc_api::calc::_bind(ctx, "calc-noimpl", "");
  EXPECT_THROW(proxy->bogus_op(), NoImplement);
}

TEST_F(OrbFixture, BindToUnknownNameThrowsObjectNotExist) {
  ClientCtx ctx(orb_);
  EXPECT_THROW(
      calc_api::calc::_bind(ctx, "nobody", ""),
      ObjectNotExist);
}

TEST_F(OrbFixture, SpmdClientSpmdServerDistributedDot) {
  CalcServer server(orb_, 4, "calc-spmd");
  rts::Domain client("client", 3);
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb_, dctx);
    auto proxy = calc_api::calc::_spmd_bind(ctx, "calc-spmd", "");
    constexpr std::size_t kN = 100;
    vec a = make_seq(dctx.comm, kN);
    vec b = make_seq(dctx.comm, kN, 2.0);
    double expected = 0.0;
    for (std::size_t i = 0; i < kN; ++i)
      expected += static_cast<double>(i) * 2.0 * static_cast<double>(i);
    EXPECT_DOUBLE_EQ(proxy->dot(a, b), expected);
  });
}

TEST_F(OrbFixture, DistributedOutArgumentRoundTrip) {
  // v transferred to a CONCENTRATED server-side layout, result comes
  // back CYCLIC on the server but BLOCK on the client.
  std::map<std::string, std::vector<DistSpec>> specs{
      {"scale", {DistSpec::concentrated(0), DistSpec::cyclic(4)}}};
  CalcServer server(orb_, 4, "calc-dist", specs);
  rts::Domain client("client", 2);
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb_, dctx);
    auto proxy = calc_api::calc::_spmd_bind(ctx, "calc-dist", "");
    constexpr std::size_t kN = 57;
    vec v = make_seq(dctx.comm, kN);
    vec r(dctx.comm, kN);  // expected out, BLOCK by default
    proxy->scale(2.5, v, r);
    for (std::size_t li = 0; li < r.local_size(); ++li) {
      const std::size_t g = r.local_to_global(li);
      EXPECT_DOUBLE_EQ(r.local()[li], 2.5 * static_cast<double>(g));
    }
  });
}

TEST_F(OrbFixture, NonBlockingFuturesResolveTogether) {
  CalcServer server(orb_, 2, "calc-nb");
  rts::Domain client("client", 2);
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb_, dctx);
    auto proxy = calc_api::calc::_spmd_bind(ctx, "calc-nb", "");
    constexpr std::size_t kN = 40;
    vec v = make_seq(dctx.comm, kN);
    auto r = std::make_shared<vec>(dctx.comm, kN);
    FutureVoid done;
    proxy->scale_nb(3.0, v, r, done);

    Future<double> d;
    vec b = make_seq(dctx.comm, kN);
    proxy->dot_nb(v, b, d);

    // Poll until resolved (paper: "the programmer may poll on a future").
    while (!done.resolved() || !d.resolved()) std::this_thread::yield();
    done.get();
    for (std::size_t li = 0; li < r->local_size(); ++li)
      EXPECT_DOUBLE_EQ(r->local()[li],
                       3.0 * static_cast<double>(r->local_to_global(li)));
    double expected = 0.0;
    for (std::size_t i = 0; i < kN; ++i)
      expected += static_cast<double>(i) * static_cast<double>(i);
    EXPECT_DOUBLE_EQ(d.get(), expected);
  });
}

TEST_F(OrbFixture, ImplicitFutureConversionBlocks) {
  CalcServer server(orb_, 1, "calc-conv");
  ClientCtx ctx(orb_);
  auto proxy = calc_api::calc::_bind(ctx, "calc-conv", "");
  Future<Long> f;
  proxy->counter_nb(7, f);
  const Long v = f;  // ABC++-style implicit blocking read
  EXPECT_EQ(v, 7);
}

TEST_F(OrbFixture, SequencePreservedAcrossNonBlockingInvocations) {
  CalcServer server(orb_, 2, "calc-seq");
  ClientCtx ctx(orb_);
  auto proxy = calc_api::calc::_bind(ctx, "calc-seq", "");
  std::vector<Future<Long>> futures(20);
  for (int i = 0; i < 20; ++i) proxy->counter_nb(i, futures[static_cast<std::size_t>(i)]);
  for (auto& f : futures) f.get();
  std::lock_guard<std::mutex> lock(server.shared().mutex);
  ASSERT_EQ(server.shared().counter_log.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(server.shared().counter_log[static_cast<std::size_t>(i)], i);
}

TEST_F(OrbFixture, UnresolvedFutureReadOfUnboundThrows) {
  Future<Long> f;
  EXPECT_THROW(f.get(), BadInvOrder);
}

TEST_F(OrbFixture, SingleObjectsDistributedOverParallelServer) {
  // The §4.2 pattern: single objects owned by different threads of one
  // parallel server, each independently callable. The server runs on a
  // modeled host so the collocation bypass does not apply and requests
  // take the POA single-object dispatch path.
  sim::HostModel host{.name = "H", .gflops = 1.0};
  CalcServer server(orb_, 4, "calc-par", {}, &host, /*with_singles=*/true);
  ClientCtx ctx(orb_);
  for (int r = 0; r < 4; ++r) {
    auto proxy = calc_api::calc::_bind(ctx, "calc-par.single" + std::to_string(r), "");
    const Long value = proxy->counter(1);
    EXPECT_EQ(value, server.shared().counter.load());
    EXPECT_EQ(value, r + 1);
  }
}

TEST_F(OrbFixture, CollocatedSameDomainBindIsDirectCall) {
  rts::Domain domain("both", 3);
  domain.run([&](rts::DomainContext& dctx) {
    Poa poa(orb_, dctx);
    CalcImpl::Shared shared;  // per-thread shared is fine: direct calls only
    CalcImpl servant(shared, &dctx.comm);
    poa.activate_spmd(servant, "calc-colloc");

    ClientCtx ctx(orb_, dctx);
    auto proxy = calc_api::calc::_spmd_bind(ctx, "calc-colloc", "");
    // Bypass applies: same process, same domain, matching width.
    EXPECT_NE(proxy->_binding()->collocated_servant(), nullptr);
    vec a = make_seq(dctx.comm, 30);
    vec b = make_seq(dctx.comm, 30);
    double expected = 0.0;
    for (std::size_t i = 0; i < 30; ++i)
      expected += static_cast<double>(i) * static_cast<double>(i);
    EXPECT_DOUBLE_EQ(proxy->dot(a, b), expected);
  });
}

TEST_F(OrbFixture, RemoteBindingIsNotCollocated) {
  CalcServer server(orb_, 2, "calc-remote");
  rts::Domain client("client", 2);
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb_, dctx);
    auto proxy = calc_api::calc::_spmd_bind(ctx, "calc-remote", "");
    EXPECT_EQ(proxy->_binding()->collocated_servant(), nullptr);
  });
}

TEST(OrbTcp, SpmdInvocationOverRealSockets) {
  InProcessRegistry registry;
  transport::TcpTransport server_tp(0);
  transport::TcpTransport client_tp(0);
  Orb server_orb(server_tp, registry);
  Orb client_orb(client_tp, registry);

  CalcServer server(server_orb, 2, "calc-tcp");
  rts::Domain client("client", 2);
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(client_orb, dctx);
    auto proxy = calc_api::calc::_spmd_bind(ctx, "calc-tcp", "");
    constexpr std::size_t kN = 64;
    vec v = make_seq(dctx.comm, kN);
    vec r(dctx.comm, kN);
    proxy->scale(-1.0, v, r);
    for (std::size_t li = 0; li < r.local_size(); ++li)
      EXPECT_DOUBLE_EQ(r.local()[li],
                       -1.0 * static_cast<double>(r.local_to_global(li)));
  });
}

TEST_F(OrbFixture, ManyConcurrentClients) {
  CalcServer server(orb_, 2, "calc-many");
  std::vector<std::thread> clients;
  std::atomic<Long> total{0};
  for (int c = 0; c < 6; ++c)
    clients.emplace_back([&] {
      ClientCtx ctx(orb_);
      auto proxy = calc_api::calc::_bind(ctx, "calc-many", "");
      for (int i = 0; i < 10; ++i) proxy->counter(1);
      total.fetch_add(10);
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(server.shared().counter.load(), 60);
  EXPECT_EQ(total.load(), 60);
}

}  // namespace
}  // namespace pardis::core
