// pardis-idl --lint: one test per PLxxx diagnostic code, renderer
// golden output (text and JSON), driver exit codes, and the
// lint-cleanliness of every committed IDL fixture.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "idl/driver.hpp"
#include "idl/include.hpp"
#include "idl/lint.hpp"
#include "idl/parser.hpp"

namespace pardis::idl {
namespace {

std::vector<Diagnostic> lint(const std::string& src) {
  Parser parser(src, "test.idl");
  const Spec spec = parser.parse();
  return run_lint(spec);
}

bool has_code(const std::vector<Diagnostic>& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& first(const std::vector<Diagnostic>& diags, const std::string& code) {
  for (const Diagnostic& d : diags)
    if (d.code == code) return d;
  throw std::runtime_error("no diagnostic with code " + code);
}

// ---------------------------------------------------------------------------
// PL001 — unused type definitions

TEST(LintPL001, FlagsUnusedTypedefStructAndEnum) {
  const auto diags = lint(R"(
    typedef sequence<long> dead_rows;
    struct dead_point { double x; };
    enum dead_color { RED };
    interface svc { void ping(in long x); };
  )");
  ASSERT_EQ(diags.size(), 3u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.code, "PL001");
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_GT(d.loc.line, 0);
  }
  EXPECT_NE(first(diags, "PL001").message.find("dead_rows"), std::string::npos);
}

TEST(LintPL001, TransitiveUseThroughTypedefAndStructCounts) {
  const auto diags = lint(R"(
    struct point { double x; double y; };
    typedef sequence<point> path;
    interface svc { void draw(in path p); };
  )");
  EXPECT_FALSE(has_code(diags, "PL001"));
}

TEST(LintPL001, ConstantsAreNotFlagged) {
  // e2e.idl keeps unused consts on purpose; consts are emitted
  // unconditionally and cost nothing downstream.
  const auto diags = lint(R"(
    const long UNUSED = 42;
    interface svc { void ping(in long x); };
  )");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// PL002 — non-marshalable element types

TEST(LintPL002, FlagsBooleanSequenceAndDsequence) {
  const auto diags = lint(R"(
    typedef sequence<boolean> bits;
    typedef dsequence<boolean> dbits;
    interface svc { void f(in bits a, in dbits b); };
  )");
  ASSERT_EQ(diags.size(), 2u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.code, "PL002");
    EXPECT_EQ(d.severity, Severity::kError);
  }
  EXPECT_NE(diags[0].message.find("boolean"), std::string::npos);
}

TEST(LintPL002, SeesThroughTypedefChains) {
  const auto diags = lint(R"(
    typedef boolean flag;
    typedef sequence<flag> bits;
    interface svc { void f(in bits a); };
  )");
  EXPECT_TRUE(has_code(diags, "PL002"));
}

TEST(LintPL002, VariableSizeElementsAreFine) {
  // solvers.idl ships dsequence<sequence<double>> — must stay clean.
  const auto diags = lint(R"(
    typedef sequence<double> row;
    typedef dsequence<row, BLOCK, CONCENTRATED> matrix;
    interface svc { void solve(in matrix m); };
  )");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// PL003 — unknown package mappings

TEST(LintPL003, FlagsUnknownPackageAndStructure) {
  const auto diags = lint(R"(
    #pragma HPC++:matrix
    typedef dsequence<double> v;
    interface svc { void f(in v x); };
  )");
  ASSERT_TRUE(has_code(diags, "PL003"));
  const auto& d = first(diags, "PL003");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("HPC++:matrix"), std::string::npos);
}

TEST(LintPL003, KnownMappingsPass) {
  const auto diags = lint(R"(
    #pragma HPC++:vector
    #pragma POOMA:field
    typedef dsequence<double> v;
    interface svc { void f(in v x); };
  )");
  EXPECT_FALSE(has_code(diags, "PL003"));
}

// ---------------------------------------------------------------------------
// PL004 — generated-symbol collisions

TEST(LintPL004, FlagsUnderscorePrefix) {
  const auto diags = lint(R"(
    interface svc { void f(in long _req); };
  )");
  EXPECT_TRUE(has_code(diags, "PL004"));
}

TEST(LintPL004, FlagsPoaPrefix) {
  const auto diags = lint(R"(
    interface POA_svc { void f(in long x); };
  )");
  EXPECT_TRUE(has_code(diags, "PL004"));
}

TEST(LintPL004, FlagsVarSiblingOfExistingName) {
  const auto diags = lint(R"(
    typedef dsequence<double> vec;
    typedef dsequence<long> vec_var;
    interface svc { void f(in vec a, in vec_var b); };
  )");
  ASSERT_TRUE(has_code(diags, "PL004"));
  EXPECT_NE(first(diags, "PL004").message.find("'vec'"), std::string::npos);
}

TEST(LintPL004, FlagsNbSiblingOperation) {
  const auto diags = lint(R"(
    interface svc {
      void solve(in long x);
      void solve_nb(in long x);
    };
  )");
  ASSERT_TRUE(has_code(diags, "PL004"));
  EXPECT_NE(first(diags, "PL004").message.find("non-blocking stub"), std::string::npos);
}

TEST(LintPL004, NbNameWithoutSiblingIsFine) {
  const auto diags = lint(R"(
    interface svc { void solve_nb(in long x); };
  )");
  EXPECT_FALSE(has_code(diags, "PL004"));
}

// ---------------------------------------------------------------------------
// PL005 — reserved C++ keywords

TEST(LintPL005, FlagsKeywordIdentifiers) {
  const auto diags = lint(R"(
    struct sample { long class; };
    interface svc { void f(in sample s, in long template); };
  )");
  int n = 0;
  for (const auto& d : diags)
    if (d.code == "PL005") {
      ++n;
      EXPECT_EQ(d.severity, Severity::kError);
    }
  EXPECT_EQ(n, 2);
}

// ---------------------------------------------------------------------------
// PL006 — distribution specs the transfer planner rejects

TEST(LintPL006, FlagsClientConcentratedAwayFromRankZero) {
  const auto diags = lint(R"(
    typedef dsequence<double, CONCENTRATED(1), BLOCK> v;
    interface svc { void f(in v x); };
  )");
  ASSERT_TRUE(has_code(diags, "PL006"));
  EXPECT_EQ(first(diags, "PL006").severity, Severity::kWarning);
}

TEST(LintPL006, ConcentratedAtRootZeroPasses) {
  // e2e.idl's dvec uses server-side CONCENTRATED; client root 0 is the
  // always-valid single-client case.
  const auto diags = lint(R"(
    typedef dsequence<double, CONCENTRATED, BLOCK> a;
    typedef dsequence<double, BLOCK, CONCENTRATED(1)> b;
    interface svc { void f(in a x, in b y); };
  )");
  EXPECT_FALSE(has_code(diags, "PL006"));
}

// ---------------------------------------------------------------------------
// PL007 — empty interfaces

TEST(LintPL007, FlagsBaselessEmptyInterface) {
  const auto diags = lint("interface nothing {};");
  ASSERT_TRUE(has_code(diags, "PL007"));
  EXPECT_EQ(first(diags, "PL007").severity, Severity::kWarning);
}

TEST(LintPL007, EmptyInterfaceWithBaseIsAMarkerType) {
  const auto diags = lint(R"(
    interface base { void ping(in long x); };
    interface marker : base {};
  )");
  EXPECT_FALSE(has_code(diags, "PL007"));
}

// ---------------------------------------------------------------------------
// PL008 — duplicate enumerators

TEST(LintPL008, FlagsDuplicateEnumerator) {
  const auto diags = lint(R"(
    enum color { RED, GREEN, RED };
    interface svc { void f(in color c); };
  )");
  ASSERT_TRUE(has_code(diags, "PL008"));
  const auto& d = first(diags, "PL008");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("'RED'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// PL009 — #pragma idempotent on oneway operations

TEST(LintPL009, FlagsIdempotentOneway) {
  const auto diags = lint(R"(
    interface svc {
      #pragma idempotent
      oneway void fire(in long x);
    };
  )");
  ASSERT_TRUE(has_code(diags, "PL009"));
  const auto& d = first(diags, "PL009");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("'fire'"), std::string::npos);
}

TEST(LintPL009, IdempotentTwowayPasses) {
  const auto diags = lint(R"(
    interface svc {
      #pragma idempotent
      long get(in long key);
      oneway void fire(in long x);
    };
  )");
  EXPECT_FALSE(has_code(diags, "PL009"));
}

TEST(LintPL009, PragmaPlacementErrorsAreParseErrors) {
  // Top level, dangling before '}', and unknown in-body pragmas are the
  // parser's job, with actionable messages.
  EXPECT_THROW(lint("#pragma idempotent\ninterface svc { void f(in long x); };"),
               IdlError);
  EXPECT_THROW(lint("interface svc { void f(in long x); #pragma idempotent };"),
               IdlError);
  EXPECT_THROW(lint("interface svc { #pragma nonsense\n void f(in long x); };"),
               IdlError);
  try {
    lint("#pragma idempotent\ninterface svc { void f(in long x); };");
    FAIL() << "top-level #pragma idempotent must not parse";
  } catch (const IdlError& e) {
    EXPECT_NE(std::string(e.what()).find("inside an interface body"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Renderers

TEST(LintRender, TextUsesGccFormat) {
  const auto diags = lint(R"(typedef sequence<long> dead;
interface svc { void f(in long x); };)");
  ASSERT_EQ(diags.size(), 1u);
  std::ostringstream os;
  render_text(diags, os);
  EXPECT_EQ(os.str(),
            "test.idl:1:24: warning: typedef 'dead' is never used by any interface "
            "operation [PL001]\n");
}

TEST(LintRender, JsonIsWellFormedAndEscaped) {
  std::vector<Diagnostic> diags{
      {"PL004", Severity::kError, "a \"b\".idl", Loc{3, 7}, "needs \\escaping\n"}};
  std::ostringstream os;
  render_json(diags, os);
  EXPECT_EQ(os.str(),
            "[\n  {\"code\":\"PL004\",\"severity\":\"error\",\"file\":\"a \\\"b\\\".idl\","
            "\"line\":3,\"column\":7,\"message\":\"needs \\\\escaping\\n\"}\n]\n");
}

TEST(LintRender, EmptyJsonIsAnEmptyArray) {
  std::ostringstream os;
  render_json({}, os);
  EXPECT_EQ(os.str(), "[]\n");
}

TEST(LintFailed, WarningsFailOnlyUnderWerror) {
  std::vector<Diagnostic> warn{{"PL001", Severity::kWarning, "f", Loc{1, 1}, "m"}};
  std::vector<Diagnostic> err{{"PL002", Severity::kError, "f", Loc{1, 1}, "m"}};
  EXPECT_FALSE(lint_failed({}, false));
  EXPECT_FALSE(lint_failed(warn, false));
  EXPECT_TRUE(lint_failed(warn, true));
  EXPECT_TRUE(lint_failed(err, false));
}

// ---------------------------------------------------------------------------
// Committed fixtures: the dirty fixture produces every code with
// locations; every shipped example/bench IDL stays lint-clean.

std::string fixture_dir() { return std::string(PARDIS_TEST_IDL_DIR); }

TEST(LintFixtures, DirtyFixtureReportsAllNineCodes) {
  std::ostringstream out, err;
  const int rc = run({fixture_dir() + "/lint_fixture.idl", "--lint"}, out, err);
  EXPECT_EQ(rc, 1);  // errors present
  const std::string text = out.str();
  for (const char* code :
       {"[PL001]", "[PL002]", "[PL003]", "[PL004]", "[PL005]", "[PL006]", "[PL007]",
        "[PL008]", "[PL009]"})
    EXPECT_NE(text.find(code), std::string::npos) << "missing " << code << "\n" << text;
  // Spot-check golden locations (file:line:col against the committed
  // fixture).
  EXPECT_NE(text.find("lint_fixture.idl:5:26: error: duplicate enumerator 'RED'"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lint_fixture.idl:24:24: error: parameter 'template'"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lint_fixture.idl:30:15: warning: #pragma idempotent on oneway "
                      "operation 'raise_alarm'"),
            std::string::npos)
      << text;
}

TEST(LintFixtures, DirtyFixtureJsonListsAllNineCodes) {
  std::ostringstream out, err;
  const int rc = run({fixture_dir() + "/lint_fixture.idl", "--lint-json"}, out, err);
  EXPECT_EQ(rc, 1);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  for (const char* code :
       {"\"PL001\"", "\"PL002\"", "\"PL003\"", "\"PL004\"", "\"PL005\"", "\"PL006\"",
        "\"PL007\"", "\"PL008\"", "\"PL009\""})
    EXPECT_NE(json.find(code), std::string::npos) << "missing " << code << "\n" << json;
  EXPECT_NE(json.find("\"line\":5"), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"PL009\",\"severity\":\"warning\""), std::string::npos);
}

TEST(LintFixtures, ShippedIdlStaysLintClean) {
  const std::string root = std::string(PARDIS_SOURCE_DIR);
  for (const char* rel :
       {"examples/idl/quickstart.idl", "examples/idl/solvers.idl",
        "examples/idl/dna.idl", "examples/idl/pipeline.idl", "tests/idl/e2e.idl"}) {
    std::ostringstream out, err;
    const int rc = run({root + "/" + rel, "--lint", "--werror"}, out, err);
    EXPECT_EQ(rc, 0) << rel << " is not lint-clean:\n" << out.str() << err.str();
  }
}

// ---------------------------------------------------------------------------
// Driver exit codes

std::string write_temp_idl(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + name;
  std::ofstream f(path);
  f << body;
  return path;
}

TEST(LintDriver, WarningsExitZeroWithoutWerror) {
  const auto path = write_temp_idl("warn_only.idl", R"(
    typedef sequence<long> dead;
    interface svc { void f(in long x); };
  )");
  std::ostringstream out, err;
  EXPECT_EQ(run({path, "--lint"}, out, err), 0);
  EXPECT_NE(out.str().find("[PL001]"), std::string::npos);
  std::ostringstream out2, err2;
  EXPECT_EQ(run({path, "--lint", "--werror"}, out2, err2), 1);
}

TEST(LintDriver, LintPassesThenCodegenRunsWhenOutputGiven) {
  const auto path = write_temp_idl("clean.idl", "interface svc { void f(in long x); };");
  const std::string out_path = testing::TempDir() + "clean_gen.hpp";
  std::ostringstream out, err;
  ASSERT_EQ(run({path, "--lint", "-o", out_path}, out, err), 0) << err.str();
  std::ifstream gen(out_path);
  ASSERT_TRUE(gen.good());
  std::stringstream code;
  code << gen.rdbuf();
  EXPECT_NE(code.str().find("class svc"), std::string::npos);
  std::remove(out_path.c_str());
}

TEST(LintDriver, UsageErrorsExitTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(run({}, out, err), 2);
  EXPECT_EQ(run({"--bogus-flag"}, out, err), 2);
  EXPECT_EQ(run({"input.idl"}, out, err), 2);  // no -o and no --lint
}

TEST(LintDriver, ParseErrorsExitNonZero) {
  const auto path = write_temp_idl("broken.idl", "interface svc { void f(in long x) }");
  std::ostringstream out, err;
  EXPECT_EQ(run({path, "-o", testing::TempDir() + "broken.hpp"}, out, err), 1);
  EXPECT_FALSE(err.str().empty());
}

TEST(LintDriver, UnopenableOutputExitsNonZero) {
  // -o pointing at a directory: the ofstream never opens, which must
  // be reported and exit 1 (the open-failure half of the exit-0 bug;
  // the post-write half is covered by the /dev/full test below).
  const auto path = write_temp_idl("ok_dir.idl", "interface svc { void f(in long x); };");
  std::ostringstream out, err;
  EXPECT_EQ(run({path, "-o", testing::TempDir()}, out, err), 1);
  EXPECT_NE(err.str().find("cannot write"), std::string::npos);
}

TEST(LintDriver, WriteFailureAfterCodegenExitsNonZero) {
  // Regression: a full disk used to leave a truncated header AND exit
  // 0, so the build cached the bad output. /dev/full fails every
  // write with ENOSPC.
  std::ifstream dev_full("/dev/full");
  if (!dev_full.good()) GTEST_SKIP() << "/dev/full not available";
  const auto path = write_temp_idl("ok.idl", "interface svc { void f(in long x); };");
  std::ostringstream out, err;
  EXPECT_EQ(run({path, "-o", "/dev/full"}, out, err), 1);
  EXPECT_NE(err.str().find("error writing"), std::string::npos);
}

}  // namespace
}  // namespace pardis::idl
