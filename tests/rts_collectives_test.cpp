// Collectives across domains of varying width (parameterized sweep).
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "rts/collectives.hpp"
#include "rts/domain.hpp"

namespace pardis::rts {
namespace {

class CollectivesTest : public ::testing::TestWithParam<int> {
 protected:
  int nranks() const { return GetParam(); }
};

TEST_P(CollectivesTest, BarrierCompletes) {
  Domain d("barrier", nranks());
  d.run([](DomainContext& ctx) {
    for (int i = 0; i < 5; ++i) barrier(ctx.comm);
  });
}

TEST_P(CollectivesTest, BroadcastValue) {
  Domain d("bcast", nranks());
  d.run([](DomainContext& ctx) {
    const std::string msg =
        broadcast_value<std::string>(ctx.comm, ctx.rank == 0 ? "hello" : "", 0);
    EXPECT_EQ(msg, "hello");
  });
}

TEST_P(CollectivesTest, BroadcastFromNonZeroRoot) {
  Domain d("bcast2", nranks());
  const int root = nranks() - 1;
  d.run([root](DomainContext& ctx) {
    const int v = broadcast_value<int>(ctx.comm, ctx.rank == root ? 123 : -1, root);
    EXPECT_EQ(v, 123);
  });
}

TEST_P(CollectivesTest, GatherInRankOrder) {
  Domain d("gather", nranks());
  d.run([](DomainContext& ctx) {
    auto values = gather_values<int>(ctx.comm, ctx.rank * 10, 0);
    if (ctx.rank == 0) {
      ASSERT_EQ(static_cast<int>(values.size()), ctx.size);
      for (int r = 0; r < ctx.size; ++r) EXPECT_EQ(values[r], r * 10);
    } else {
      EXPECT_TRUE(values.empty());
    }
  });
}

TEST_P(CollectivesTest, AllgatherEveryRankSeesAll) {
  Domain d("allgather", nranks());
  d.run([](DomainContext& ctx) {
    auto values = allgather_values<int>(ctx.comm, ctx.rank + 1);
    ASSERT_EQ(static_cast<int>(values.size()), ctx.size);
    for (int r = 0; r < ctx.size; ++r) EXPECT_EQ(values[r], r + 1);
  });
}

TEST_P(CollectivesTest, ScatterDeliversPerRankPieces) {
  Domain d("scatter", nranks());
  d.run([](DomainContext& ctx) {
    std::vector<ByteBuffer> pieces;
    if (ctx.rank == 0)
      for (int r = 0; r < ctx.size; ++r) pieces.push_back(cdr_encode(r * 3));
    ByteBuffer mine = scatter(ctx.comm, std::move(pieces), 0);
    EXPECT_EQ(cdr_decode<int>(mine.view()), ctx.rank * 3);
  });
}

TEST_P(CollectivesTest, Reductions) {
  Domain d("reduce", nranks());
  const int n = nranks();
  d.run([n](DomainContext& ctx) {
    EXPECT_EQ(allreduce_sum(ctx.comm, ctx.rank + 1), n * (n + 1) / 2);
    EXPECT_EQ(allreduce_max(ctx.comm, ctx.rank), n - 1);
    EXPECT_EQ(allreduce_min(ctx.comm, ctx.rank + 5), 5);
    EXPECT_DOUBLE_EQ(allreduce_sum(ctx.comm, 0.5), 0.5 * n);
  });
}

TEST_P(CollectivesTest, BackToBackCollectivesDoNotInterleave) {
  Domain d("b2b", nranks());
  d.run([](DomainContext& ctx) {
    for (int round = 0; round < 20; ++round) {
      const int v = broadcast_value<int>(ctx.comm, ctx.rank == 0 ? round : -1, 0);
      EXPECT_EQ(v, round);
      EXPECT_EQ(allreduce_sum(ctx.comm, round), round * ctx.size);
    }
  });
}

TEST_P(CollectivesTest, CollectivesCoexistWithUserTraffic) {
  Domain d("mixed", nranks());
  d.run([](DomainContext& ctx) {
    // User point-to-point on user tags, interleaved with collectives:
    // the reserved collective tag keeps them separate.
    const int peer = (ctx.rank + 1) % ctx.size;
    ctx.comm.send(peer, 11, cdr_encode(ctx.rank));
    EXPECT_EQ(allreduce_sum(ctx.comm, 1), ctx.size);
    auto m = ctx.comm.recv(kAnySource, 11);
    EXPECT_EQ(cdr_decode<int>(m.payload.view()), m.source);
  });
}

TEST_P(CollectivesTest, InvalidRootThrows) {
  Domain d("badroot", nranks());
  EXPECT_THROW(
      d.run([](DomainContext& ctx) { broadcast(ctx.comm, ByteBuffer{}, ctx.size + 3); }),
      BadParam);
}

INSTANTIATE_TEST_SUITE_P(Widths, CollectivesTest, ::testing::Values(1, 2, 3, 4, 7, 10));

}  // namespace
}  // namespace pardis::rts
