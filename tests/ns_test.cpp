// pardis_ns: sharded naming, leases, resolver caching, reconnect, and
// announce-based discovery. Deterministic throughout: lease expiry is
// driven by a fake clock through InProcessRegistry::set_time_source,
// and link faults fire at exact message indices via the FaultPlan — no
// sleeps-as-synchronization, no timing assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "ns/announce.hpp"
#include "ns/ns.hpp"
#include "ns/resolver_cache.hpp"
#include "ns/shard_map.hpp"
#include "ns/sharded_registry.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "repo/repository.hpp"
#include "sim/testbed.hpp"

namespace pardis::ns {
namespace {

core::ObjectRef make_ref(const std::string& name, const std::string& host,
                         ULongLong ep_id = 1) {
  core::ObjectRef ref;
  ref.type_id = "IDL:test:1.0";
  ref.name = name;
  ref.host = host;
  ref.object_id = ObjectId::next();
  transport::EndpointAddr ep;
  ep.kind = transport::AddrKind::kLocal;
  ep.host_model = host;
  ep.local_id = ep_id;
  ref.thread_eps = {ep};
  return ref;
}

transport::EndpointAddr local_addr(ULongLong id, const std::string& host = "") {
  transport::EndpointAddr a;
  a.kind = transport::AddrKind::kLocal;
  a.host_model = host;
  a.local_id = id;
  return a;
}

ShardMap map_of(std::vector<std::vector<transport::EndpointAddr>> shards,
                ULong vnodes = 16, ULongLong version = 1) {
  ShardMap m;
  m.vnodes = vnodes;
  m.version = version;
  for (auto& reps : shards) m.shards.push_back({std::move(reps)});
  return m;
}

// --- shard map -------------------------------------------------------------

TEST(ShardMapTest, RoutingIsDeterministicAndReasonablyBalanced) {
  ShardMap m = map_of({{local_addr(1)}, {local_addr(2)}, {local_addr(3)}, {local_addr(4)}});
  const auto ring = m.build_ring();
  ASSERT_EQ(ring.size(), 4u * m.vnodes);

  std::map<ULong, std::size_t> counts;
  for (int i = 0; i < 8000; ++i) {
    const std::string name = "object-" + std::to_string(i);
    const ULong s = ShardMap::pick(ring, name);
    EXPECT_EQ(s, m.shard_for(name));  // ring and convenience path agree
    counts[s]++;
  }
  ASSERT_EQ(counts.size(), 4u);  // every shard owns some of the space
  for (const auto& [shard, n] : counts) {
    // With 16 vnodes the load stays within a loose band of even.
    EXPECT_GT(n, 8000u / 16) << "shard " << shard << " nearly starved";
    EXPECT_LT(n, 8000u / 2) << "shard " << shard << " owns half the space";
  }
}

TEST(ShardMapTest, ReplicaAddressesDoNotAffectRouting) {
  ShardMap a = map_of({{local_addr(1)}, {local_addr(2)}});
  ShardMap b = map_of({{local_addr(77, "HOST1"), local_addr(78)}, {local_addr(99)}});
  for (int i = 0; i < 500; ++i) {
    const std::string name = "n" + std::to_string(i);
    EXPECT_EQ(a.shard_for(name), b.shard_for(name));
  }
}

TEST(ShardMapTest, MarshalRoundTripAndKeyedDigest) {
  ShardMap m = map_of({{local_addr(1, "HOST1"), local_addr(2, "HOST2")}, {local_addr(3)}},
                      /*vnodes=*/8, /*version=*/42);
  ByteBuffer bytes;
  CdrWriter w(bytes);
  m.marshal(w);
  CdrReader r(bytes.view());
  const ShardMap back = ShardMap::unmarshal(r);
  EXPECT_EQ(back, m);

  EXPECT_EQ(m.digest(123), back.digest(123));
  EXPECT_NE(m.digest(123), m.digest(124));  // keyed
  ShardMap other = m;
  other.version = 43;
  EXPECT_NE(other.digest(123), m.digest(123));  // content-sensitive
}

// --- config validation -----------------------------------------------------

TEST(NsConfigTest, ValidatedClampsOutOfRangeKnobs) {
  NsConfig raw;
  raw.shards = 0;
  raw.vnodes = 100000;
  raw.lease = std::chrono::milliseconds(-5);
  raw.negative_ttl = std::chrono::milliseconds(-1);
  raw.announce_period = std::chrono::milliseconds(0);
  raw.repo_timeout = std::chrono::milliseconds(0);
  const NsConfig c = NsConfig::validated(raw);
  EXPECT_EQ(c.shards, 1u);
  EXPECT_EQ(c.vnodes, 256u);
  EXPECT_EQ(c.lease.count(), 0);
  EXPECT_EQ(c.negative_ttl.count(), 0);
  EXPECT_EQ(c.announce_period.count(), 1);
  EXPECT_EQ(c.repo_timeout.count(), -1);

  NsConfig big;
  big.shards = 1000;
  big.vnodes = 0;
  big.lease = std::chrono::milliseconds(50);
  big.renew_interval = std::chrono::milliseconds(60);  // >= lease: races expiry
  const NsConfig c2 = NsConfig::validated(big);
  EXPECT_EQ(c2.shards, 64u);
  EXPECT_EQ(c2.vnodes, 1u);
  EXPECT_EQ(c2.renew_interval.count(), 0);  // falls back to lease/3
  EXPECT_EQ(c2.effective_renew().count(), 50 / 3);
}

// --- resolver cache --------------------------------------------------------

TEST(ResolverCacheTest, PositiveHitAndNegativeTtl) {
  auto fake_now = std::make_shared<std::atomic<double>>(0.0);
  ResolverCache cache(std::chrono::milliseconds(100), [fake_now] { return fake_now->load(); });

  core::ReplicaGroup g;
  EXPECT_EQ(cache.get("a", "", &g), ResolverCache::Outcome::kMiss);

  core::ReplicaGroup stored;
  stored.name = "a";
  stored.epoch = 3;
  stored.members.push_back(make_ref("a", "HOST1"));
  cache.put("a", "", stored);
  EXPECT_EQ(cache.get("a", "", &g), ResolverCache::Outcome::kHit);
  EXPECT_EQ(g.epoch, 3u);

  cache.put_negative("missing", "");
  EXPECT_EQ(cache.get("missing", "", nullptr), ResolverCache::Outcome::kNegative);
  fake_now->store(0.05);  // within the TTL
  EXPECT_EQ(cache.get("missing", "", nullptr), ResolverCache::Outcome::kNegative);
  fake_now->store(0.11);  // past it
  EXPECT_EQ(cache.get("missing", "", nullptr), ResolverCache::Outcome::kMiss);
  // Positive entries never age out on their own.
  EXPECT_EQ(cache.get("a", "", &g), ResolverCache::Outcome::kHit);
}

TEST(ResolverCacheTest, EpochObservationDropsStaleViews) {
  ResolverCache cache(std::chrono::milliseconds(100));
  core::ReplicaGroup stored;
  stored.name = "grp";
  stored.epoch = 3;
  stored.members.push_back(make_ref("grp", "HOST1"));
  cache.put("grp", "", stored);
  cache.put_negative("grp", "HOST9");

  cache.note_epoch("grp", 3);  // same epoch: positive entry survives
  core::ReplicaGroup g;
  EXPECT_EQ(cache.get("grp", "", &g), ResolverCache::Outcome::kHit);
  // ...but the negative entry dies (the name observably exists).
  EXPECT_EQ(cache.get("grp", "HOST9", nullptr), ResolverCache::Outcome::kMiss);

  cache.put("grp", "", stored);
  cache.note_epoch("grp", 4);  // fresher epoch: the cached view is stale
  EXPECT_EQ(cache.get("grp", "", &g), ResolverCache::Outcome::kMiss);

  cache.put("grp", "", stored);
  cache.invalidate("grp");
  EXPECT_EQ(cache.get("grp", "", &g), ResolverCache::Outcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);
}

// --- leases (deterministic fake clock) ------------------------------------

TEST(LeaseTest, ExpiredLeasesGarbageCollect) {
  auto fake_now = std::make_shared<std::atomic<double>>(0.0);
  core::InProcessRegistry reg;
  reg.set_time_source([fake_now] { return fake_now->load(); });

  reg.register_leased(make_ref("transient", "HOST1"), std::chrono::milliseconds(100),
                      /*replica=*/false);
  reg.register_object(make_ref("permanent", "HOST1"));
  EXPECT_TRUE(reg.lookup("transient", "").has_value());

  fake_now->store(0.15);  // past the 100 ms lease
  EXPECT_FALSE(reg.lookup("transient", "").has_value());
  EXPECT_TRUE(reg.lookup("permanent", "").has_value());

  // Group members expire individually and bump the epoch.
  fake_now->store(0.0);
  const ULongLong e1 =
      reg.register_leased(make_ref("grp", "HOST1"), std::chrono::milliseconds(100), true);
  const ULongLong e2 =
      reg.register_leased(make_ref("grp", "HOST2"), std::chrono::milliseconds(500), true);
  EXPECT_GT(e2, e1);
  fake_now->store(0.2);  // HOST1's lease lapsed, HOST2's has not
  auto group = reg.lookup_group("grp", "");
  ASSERT_TRUE(group.has_value());
  ASSERT_EQ(group->members.size(), 1u);
  EXPECT_EQ(group->members[0].host, "HOST2");
  EXPECT_GT(group->epoch, e2);  // the expiry was a membership change
}

TEST(LeaseTest, RenewExtendsButExpiredIsNotRenewable) {
  auto fake_now = std::make_shared<std::atomic<double>>(0.0);
  core::InProcessRegistry reg;
  reg.set_time_source([fake_now] { return fake_now->load(); });

  const core::ObjectRef ref = make_ref("svc", "HOST1");
  reg.register_leased(ref, std::chrono::milliseconds(100), /*replica=*/false);

  fake_now->store(0.08);
  EXPECT_TRUE(reg.renew_lease("svc", ref.object_id, std::chrono::milliseconds(100)));
  fake_now->store(0.15);  // past the original expiry, inside the renewed one
  EXPECT_TRUE(reg.lookup("svc", "").has_value());

  fake_now->store(0.5);  // lapsed for real
  EXPECT_FALSE(reg.renew_lease("svc", ref.object_id, std::chrono::milliseconds(100)));
  EXPECT_FALSE(reg.lookup("svc", "").has_value());
}

TEST(LeaseTest, KeeperRenewsInBackgroundAndStopsOnDestruction) {
  auto fake_now = std::make_shared<std::atomic<double>>(0.0);
  transport::LocalTransport transport;
  auto backing = std::make_shared<core::InProcessRegistry>();
  backing->set_time_source([fake_now] { return fake_now->load(); });
  repo::RepositoryServer server(transport, backing);

  NsConfig cfg;
  cfg.lease = std::chrono::milliseconds(100);
  cfg.renew_interval = std::chrono::milliseconds(5);  // heartbeat cadence (real time)
  {
    ShardedRegistry ns_reg(transport, map_of({{server.addr()}}), cfg);
    ns_reg.register_object(make_ref("leased", "HOST1"));
    EXPECT_EQ(ns_reg.leased_names(), 1u);

    // The heartbeat runs on real time while expiry runs on the fake
    // clock (frozen at 0): every renewal re-arms expiry at 0.1, so the
    // bounded wait below is race-free.
    for (int i = 0; i < 4000 && ns_reg.renewals() == 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(ns_reg.renewals(), 0u);

    fake_now->store(0.05);  // before any reachable expiry (>= 0.1)
    EXPECT_TRUE(backing->lookup("leased", "").has_value());
  }
  // The keeper died with the registry: renewals stop, the lease lapses.
  // (Renewals before destruction re-armed expiry to at most 0.05 + 0.1.)
  fake_now->store(0.5);
  EXPECT_FALSE(backing->lookup("leased", "").has_value());
}

// --- reconnect with backoff (satellite: resolve across a severed link) -----

TEST(NsTest, ResolveSucceedsAfterSeveredLinkHeals) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport transport(&tb);
  auto backing = std::make_shared<core::InProcessRegistry>();
  repo::RepositoryServer server(transport, backing, sim::Testbed::kHost1);
  backing->register_object(make_ref("solver", "HOST1"));

  repo::RemoteRegistry client(transport, server.addr(), std::chrono::seconds(10),
                              sim::Testbed::kWorkstation);
  EXPECT_TRUE(client.lookup("solver", "").has_value());
  EXPECT_EQ(client.last_send_attempts(), 1);

  // Sever mid-resolve. The plan activates here, so link indices count
  // from 0: sends 0 and 1 fail, the reconnect loop's third attempt
  // (index 2) heals the link and goes through.
  tb.faults().sever_link(sim::Testbed::kWorkstation, sim::Testbed::kHost1);
  tb.faults().heal_link_at(sim::Testbed::kWorkstation, sim::Testbed::kHost1, 2);
  auto found = client.lookup("solver", "");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->host, "HOST1");
  EXPECT_EQ(client.last_send_attempts(), 3);
}

// --- sharded registry ------------------------------------------------------

struct ShardFixture {
  transport::LocalTransport transport;
  std::vector<std::shared_ptr<core::InProcessRegistry>> backings;
  std::vector<std::unique_ptr<repo::RepositoryServer>> servers;
  ShardMap map;

  /// `replicas_per_shard` repository servers per shard, each with its
  /// own backing namespace.
  explicit ShardFixture(std::size_t shards, std::size_t replicas_per_shard = 1,
                        sim::Testbed* tb = nullptr)
      : transport(tb) {
    for (std::size_t s = 0; s < shards; ++s) {
      ShardMap::Shard shard;
      for (std::size_t r = 0; r < replicas_per_shard; ++r) {
        backings.push_back(std::make_shared<core::InProcessRegistry>());
        servers.push_back(std::make_unique<repo::RepositoryServer>(
            transport, backings.back(), "HOST" + std::to_string(s * replicas_per_shard + r)));
        shard.replicas.push_back(servers.back()->addr());
      }
      map.shards.push_back(std::move(shard));
    }
  }
};

TEST(NsTest, ShardedRegistryPartitionsTheNamespace) {
  ShardFixture fx(/*shards=*/3);
  NsConfig cfg;
  ShardedRegistry reg(fx.transport, fx.map, cfg);
  ASSERT_EQ(reg.shard_count(), 3u);

  const int kNames = 30;
  for (int i = 0; i < kNames; ++i)
    reg.register_object(make_ref("obj" + std::to_string(i), "HOST1"));

  std::size_t total = 0;
  for (const auto& backing : fx.backings) total += backing->list().size();
  EXPECT_EQ(total, static_cast<std::size_t>(kNames));  // no double-registration

  for (int i = 0; i < kNames; ++i) {
    const std::string name = "obj" + std::to_string(i);
    EXPECT_TRUE(reg.lookup(name, "").has_value()) << name;
    // The name lives exactly on the shard the map routes it to.
    EXPECT_TRUE(fx.backings[fx.map.shard_for(name)]->lookup(name, "").has_value()) << name;
  }
  EXPECT_EQ(reg.list().size(), static_cast<std::size_t>(kNames));
  EXPECT_FALSE(reg.lookup("nosuch", "").has_value());
}

TEST(NsTest, CachedResolveSkipsTheRepositoryAndCountsHits) {
  obs::set_enabled(true);
  obs::Counter& hits = obs::metrics().counter("ns.resolve_hits");
  obs::Counter& misses = obs::metrics().counter("ns.resolve_misses");
  const auto hits0 = hits.value();
  const auto misses0 = misses.value();

  ShardFixture fx(/*shards=*/1);
  NsConfig cfg;
  cfg.repo_timeout = std::chrono::milliseconds(100);
  ShardedRegistry reg(fx.transport, fx.map, cfg);
  reg.register_object(make_ref("hot", "HOST1"));

  ASSERT_TRUE(reg.lookup("hot", "").has_value());  // miss: fills the cache
  // Make the repository unreachable: only the cache can answer now.
  fx.servers.clear();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(reg.lookup("hot", "").has_value());
  EXPECT_GE(hits.value() - hits0, 5u);
  EXPECT_GE(misses.value() - misses0, 1u);

  // Invalidation forces the next resolve back to the (dead) repository.
  reg.invalidate("hot");
  EXPECT_THROW(reg.lookup("hot", ""), SystemException);
  obs::set_enabled(false);
}

TEST(NsTest, KillingOneShardReplicaLosesNoNames) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  ShardFixture fx(/*shards=*/2, /*replicas_per_shard=*/2, &tb);
  NsConfig cfg;
  cfg.repo_timeout = std::chrono::milliseconds(50);  // snappy failover
  cfg.cache = false;  // every resolve must survive on the live replicas alone
  ShardedRegistry reg(fx.transport, fx.map, cfg);

  const int kNames = 12;
  for (int i = 0; i < kNames; ++i)
    reg.register_object(make_ref("svc" + std::to_string(i), "HOST1"));

  // Kill one replica of shard 0 (the repository process dies).
  tb.faults().kill_endpoint(fx.map.shards[0].replicas[0].local_id);

  // Every name keeps resolving: reads fail over to the sibling, and
  // shard-1 names never notice.
  for (int i = 0; i < kNames; ++i)
    EXPECT_TRUE(reg.lookup("svc" + std::to_string(i), "").has_value()) << i;

  // New registrations still succeed (one reachable replica is enough)...
  reg.register_object(make_ref("late", "HOST2"));
  EXPECT_TRUE(reg.lookup("late", "").has_value());
  // ...and a fresh client bootstrapping from the same map sees everything.
  ShardedRegistry fresh(fx.transport, fx.map, cfg);
  for (int i = 0; i < kNames; ++i)
    EXPECT_TRUE(fresh.lookup("svc" + std::to_string(i), "").has_value()) << i;
}

TEST(NsTest, AdoptMapKeepsTheHighestVersion) {
  ShardFixture fx(/*shards=*/1);
  ShardedRegistry reg(fx.transport, fx.map, NsConfig{});

  ShardFixture wider(/*shards=*/2);
  ShardMap fresh = wider.map;
  fresh.version = 0;  // stale: ignored
  EXPECT_FALSE(reg.adopt_map(fresh));
  EXPECT_EQ(reg.shard_count(), 1u);
  fresh.version = 7;
  EXPECT_TRUE(reg.adopt_map(fresh));
  EXPECT_EQ(reg.shard_count(), 2u);
  EXPECT_FALSE(reg.adopt_map(fresh));  // same version: idempotent
  EXPECT_EQ(reg.map().version, 7u);
}

// --- epoch monotonicity under churn (satellite) ----------------------------

TEST(NsTest, EpochsNeverRegressUnderConcurrentChurn) {
  core::InProcessRegistry reg;
  std::atomic<bool> stop{false};
  std::atomic<ULongLong> max_seen{0};
  std::atomic<bool> regressed{false};
  std::atomic<bool> torn{false};

  // Observer: epochs over lookup_group must be nondecreasing even
  // while churners delete and re-create the group, and every observed
  // group must be structurally sound.
  std::thread observer([&] {
    ULongLong last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto g = reg.lookup_group("churn", "");
      if (!g) continue;
      if (g->epoch < last) regressed.store(true);
      last = std::max(last, g->epoch);
      ULongLong m = max_seen.load();
      while (m < last && !max_seen.compare_exchange_weak(m, last)) {
      }
      if (g->members.empty()) torn.store(true);
      for (const auto& mref : g->members)
        if (mref.thread_eps.empty() || mref.name != "churn") torn.store(true);
    }
  });

  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::thread> churners;
  for (int t = 0; t < kThreads; ++t) {
    churners.emplace_back([&, t] {
      const std::string host = "HOST" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        core::ObjectRef ref = make_ref("churn", host, static_cast<ULongLong>(t) + 1);
        reg.register_replica(ref);
        reg.unregister_replica("churn", ref.object_id);
      }
    });
  }
  for (auto& th : churners) th.join();
  stop.store(true);
  observer.join();

  EXPECT_FALSE(regressed.load()) << "group epoch regressed under churn";
  EXPECT_FALSE(torn.load()) << "observer saw a torn group";
  // Every register+unregister bumps the epoch at least twice; the
  // final epoch must reflect all the churn even though the group died
  // and was re-created many times (the tombstone floor at work).
  auto final_epoch = reg.register_replica(make_ref("churn", "HOSTX"));
  EXPECT_GE(final_epoch, static_cast<ULongLong>(kThreads) * kIters);
  EXPECT_GE(final_epoch, max_seen.load());
}

// --- wire compatibility (golden bytes with PARDIS_NS off) ------------------

/// Captures one repository request frame, then answers it so the
/// blocking client call completes.
ByteBuffer capture_one_request(transport::LocalTransport& transport,
                               std::shared_ptr<transport::Endpoint> fake_repo) {
  transport::RsrMessage msg = fake_repo->wait();
  ByteBuffer frame = msg.payload.clone();
  CdrReader r(msg.payload.view(), msg.little_endian);
  r.read_octet();  // op
  const transport::EndpointAddr reply_to = transport::EndpointAddr::unmarshal(r);
  const ULongLong call_id = r.read_ulonglong();
  ByteBuffer reply;
  CdrWriter w(reply);
  w.write_octet(static_cast<Octet>(repo::RepoOp::kReply));
  w.write_ulonglong(call_id);
  w.write_ulonglong(0);  // epoch (kRegisterReplica); kRegister ignores the body
  transport.rsr(reply_to, transport::kHandlerRepo, std::move(reply), "");
  return frame;
}

TEST(NsTest, LeaseFreeRegistrationBytesAreIdenticalToPreNsWire) {
  ASSERT_FALSE(enabled());  // PARDIS_NS off: the compatibility claim under test
  transport::LocalTransport transport;
  auto fake_repo = transport.create_endpoint("");
  repo::RemoteRegistry client(transport, fake_repo->addr(), std::chrono::seconds(5));
  const core::ObjectRef ref = make_ref("golden", "HOST1");

  std::thread caller([&] { client.register_object(ref); });
  const ByteBuffer plain = capture_one_request(transport, fake_repo);
  caller.join();

  // Rebuild the frame with the pre-ns encoding: op octet, reply
  // address, call id, ObjectRef — nothing else. Byte equality proves a
  // lease-free registration carries no ns trailer anywhere.
  CdrReader r(plain.view());
  EXPECT_EQ(r.read_octet(), static_cast<Octet>(repo::RepoOp::kRegister));
  const transport::EndpointAddr reply_to = transport::EndpointAddr::unmarshal(r);
  const ULongLong call_id = r.read_ulonglong();
  ByteBuffer expected;
  CdrWriter w(expected);
  w.write_octet(static_cast<Octet>(repo::RepoOp::kRegister));
  reply_to.marshal(w);
  w.write_ulonglong(call_id);
  ref.marshal(w);
  EXPECT_EQ(plain, expected);

  // A leased registration is the same frame plus the trailing lease —
  // the old bytes are a strict prefix, so old servers parse the common
  // part and new servers read the trailer iff present.
  std::thread leased_caller(
      [&] { client.register_leased(ref, std::chrono::milliseconds(500), false); });
  const ByteBuffer leased = capture_one_request(transport, fake_repo);
  leased_caller.join();
  ASSERT_GT(leased.size(), expected.size());
  CdrReader lr(leased.view());
  lr.read_octet();
  transport::EndpointAddr lreply = transport::EndpointAddr::unmarshal(lr);
  const ULongLong lcall = lr.read_ulonglong();
  ByteBuffer lexpected;
  CdrWriter lw(lexpected);
  lw.write_octet(static_cast<Octet>(repo::RepoOp::kRegister));
  lreply.marshal(lw);
  lw.write_ulonglong(lcall);
  ref.marshal(lw);
  const std::size_t prefix = lexpected.size();
  lw.write_ulong(500);  // the ns lease trailer
  EXPECT_EQ(leased, lexpected);
  EXPECT_TRUE(std::equal(lexpected.view().begin(), lexpected.view().begin() + prefix,
                         leased.view().begin()));
}

// --- announce-based discovery ----------------------------------------------

TEST(AnnounceTest, FrameRoundTripAndKeyVerification) {
  ShardMap m = map_of({{local_addr(5, "HOST1")}}, 8, 3);
  const ByteBuffer frame = make_announce(m, /*key=*/42);
  auto parsed = parse_announce(frame.view(), 42);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, m);

  EXPECT_FALSE(parse_announce(frame.view(), 43).has_value());  // wrong key
  ByteBuffer corrupt = frame.clone();
  corrupt.mutable_view()[frame.size() - 1] ^= 0xFF;
  EXPECT_FALSE(parse_announce(corrupt.view(), 42).has_value());
  ByteBuffer truncated = ByteBuffer::from(frame.view().subspan(0, 6));
  EXPECT_FALSE(parse_announce(truncated.view(), 42).has_value());
}

TEST(AnnounceTest, BusBootstrapsAClientWithoutConfiguredRepoAddr) {
  ShardFixture fx(/*shards=*/2);
  fx.backings[fx.map.shard_for("bootstrapped")]->register_object(
      make_ref("bootstrapped", "HOST1"));

  AnnounceBus bus;
  auto listener = fx.transport.create_endpoint("WS");
  bus.subscribe(listener);
  ShardMap published = fx.map;
  published.version = 9;
  Announcer announcer(bus, published, /*key=*/7, "HOST0", std::chrono::milliseconds(5));

  // The client knows only the announce key — no repository address.
  auto discovered = wait_for_map(*listener, 7, std::chrono::seconds(10));
  ASSERT_TRUE(discovered.has_value());
  EXPECT_EQ(*discovered, published);

  NsConfig cfg;
  ShardedRegistry reg(fx.transport, *discovered, cfg);
  EXPECT_TRUE(reg.lookup("bootstrapped", "").has_value());
}

TEST(AnnounceTest, FaultPlanGatesTheSimulatedMulticast) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport transport(&tb);
  AnnounceBus bus(&tb.faults());
  auto a = transport.create_endpoint("WS");
  auto b = transport.create_endpoint("SP2");
  bus.subscribe(a);
  bus.subscribe(b);
  const ShardMap m = map_of({{local_addr(1)}});

  EXPECT_EQ(bus.publish(m, 1, "HOST1"), 2u);

  // Severing the announce link to WS only starves WS — the mcast:*
  // namespace keeps the fault off WS's normal transport links.
  tb.faults().sever_link("HOST1", sim::FaultPlan::announce_dst("WS"));
  EXPECT_EQ(bus.publish(m, 1, "HOST1"), 1u);
  EXPECT_EQ(a->pending(), 1u);  // only the pre-sever frame
  EXPECT_EQ(b->pending(), 2u);

  tb.faults().heal_link("HOST1", sim::FaultPlan::announce_dst("WS"));
  EXPECT_EQ(bus.publish(m, 1, "HOST1"), 2u);
  EXPECT_EQ(a->pending(), 2u);
}

TEST(AnnounceTest, UdpCarrierRoundTrip) {
  UdpAnnounceListener listener;
  if (!listener.ok()) GTEST_SKIP() << "no UDP loopback in this environment";
  ASSERT_NE(listener.port(), 0);

  const ShardMap m = map_of({{local_addr(3, "HOST2")}}, 4, 11);
  ASSERT_TRUE(udp_announce(listener.port(), m, /*key=*/99));
  auto got = listener.wait_for_map(99, std::chrono::seconds(10));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, m);

  // A frame under the wrong key is dropped, not adopted.
  ASSERT_TRUE(udp_announce(listener.port(), m, /*key=*/1));
  EXPECT_FALSE(listener.wait_for_map(99, std::chrono::milliseconds(200)).has_value());
}

}  // namespace
}  // namespace pardis::ns
