// Drives the stubs generated from tests/idl/e2e.idl end to end: the
// full IDL-compiler → stub → ORB → skeleton → servant path.
#include <gtest/gtest.h>

#include <atomic>
#include <future>

#include "e2e.pardis.hpp"

namespace {

using namespace pardis;

class VecSvcImpl : public e2e_idl::POA_vec_svc {
 public:
  explicit VecSvcImpl(rts::Communicator* comm) : comm_(comm) {}

  std::atomic<int>* log_count = nullptr;
  e2e_idl::sample last_sample;

  e2e_idl::status ping(const pardis::String& msg, pardis::String& echoed) override {
    echoed = msg + "!";
    return msg.empty() ? e2e_idl::status::FAILED : e2e_idl::status::OK;
  }

  double total(const e2e_idl::dvec& v) override {
    double local = 0.0;
    for (std::size_t i = 0; i < v.local_size(); ++i) local += v.local()[i];
    return comm_ != nullptr ? rts::allreduce_sum(*comm_, local) : local;
  }

  void axpy(double a, const e2e_idl::dvec& x, e2e_idl::dvec& y) override {
    if (comm_ != nullptr) rts::barrier(*comm_);
    for (std::size_t li = 0; li < y.local_size(); ++li) {
      const std::size_t g = y.local_to_global(li);
      y.local()[li] = a * x[g];
    }
    if (comm_ != nullptr) rts::barrier(*comm_);
  }

  pardis::Long sum_longs(const e2e_idl::lvec& v) override {
    pardis::Long local = 0;
    for (std::size_t i = 0; i < v.local_size(); ++i) local += v.local()[i];
    return comm_ != nullptr ? rts::allreduce_sum(*comm_, local) : local;
  }

  void log_event(const e2e_idl::sample& s) override {
    if (comm_ != nullptr && comm_->rank() != 0) return;
    last_sample = s;
    if (log_count != nullptr) log_count->fetch_add(1);
  }

  pardis::Long bump(pardis::Long& value, e2e_idl::status s) override {
    const pardis::Long old = value;
    value += s == e2e_idl::status::RETRY ? 2 : 1;
    return old;
  }

  e2e_idl::names tag_all(const e2e_idl::names& base, pardis::Long count) override {
    e2e_idl::names out;
    for (pardis::Long i = 0; i < count; ++i)
      for (const auto& b : base) out.push_back(b + "#" + std::to_string(i));
    return out;
  }

 private:
  rts::Communicator* comm_;
};

class E2eServer {
 public:
  E2eServer(core::Orb& orb, int nthreads) : domain_("e2e-server", nthreads) {
    std::promise<core::Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([this, &orb, &pp](rts::DomainContext& ctx) {
      core::Poa poa(orb, ctx);
      VecSvcImpl servant(&ctx.comm);
      servant.log_count = &log_count_;
      poa.activate_spmd(servant, "vec-svc", e2e_idl::POA_vec_svc::_default_arg_specs());
      if (ctx.rank == 0) {
        servant_zero_ = &servant;
        pp.set_value(&poa);
      }
      poa.impl_is_ready();
    });
    poa_ = pf.get();
  }
  ~E2eServer() {
    poa_->deactivate();
    domain_.join();
  }

  int logs() const { return log_count_.load(); }
  const e2e_idl::sample& last_sample() const { return servant_zero_->last_sample; }

 private:
  rts::Domain domain_;
  core::Poa* poa_ = nullptr;
  VecSvcImpl* servant_zero_ = nullptr;
  std::atomic<int> log_count_{0};
};

class IdlE2eTest : public ::testing::Test {
 protected:
  transport::LocalTransport transport_;
  core::InProcessRegistry registry_;
  core::Orb orb_{transport_, registry_};
};

TEST_F(IdlE2eTest, GeneratedConstantsAndTypes) {
  EXPECT_EQ(e2e_idl::N, 16);
  EXPECT_EQ(e2e_idl::M, 33);
  EXPECT_DOUBLE_EQ(e2e_idl::EPS, 0.5);
  EXPECT_EQ(e2e_idl::GREETING, "hello");
  EXPECT_EQ(e2e_idl::dvec_bound, 1024);
  EXPECT_EQ(e2e_idl::dvec_server_spec.kind, dist::DistKind::kConcentrated);
  EXPECT_EQ(e2e_idl::lvec_client_spec.block_size, 4u);
  static_assert(std::is_same_v<e2e_idl::names, std::vector<std::string>>);
  static_assert(std::is_same_v<e2e_idl::dvec, dist::DSequence<double>>);
}

TEST_F(IdlE2eTest, StructAndEnumMarshalRoundTrip) {
  e2e_idl::sample s{42, "probe", {1.5, 2.5}};
  auto buf = cdr_encode(s);
  EXPECT_EQ(cdr_decode<e2e_idl::sample>(buf.view()), s);

  auto ebuf = cdr_encode(e2e_idl::status::RETRY);
  EXPECT_EQ(cdr_decode<e2e_idl::status>(ebuf.view()), e2e_idl::status::RETRY);

  // Out-of-range enumerator is rejected.
  ByteBuffer bad;
  CdrWriter w(bad);
  w.write_ulong(99);
  EXPECT_THROW(cdr_decode<e2e_idl::status>(bad.view()), MarshalError);
}

TEST_F(IdlE2eTest, InheritedOperationThroughDerivedProxy) {
  E2eServer server(orb_, 2);
  core::ClientCtx ctx(orb_);
  auto svc = e2e_idl::vec_svc::_bind(ctx, "vec-svc");
  pardis::String echoed;
  EXPECT_EQ(svc->ping("hi", echoed), e2e_idl::status::OK);
  EXPECT_EQ(echoed, "hi!");
  EXPECT_EQ(svc->ping("", echoed), e2e_idl::status::FAILED);
}

TEST_F(IdlE2eTest, DerivedProxyConvertsToBase) {
  E2eServer server(orb_, 1);
  core::ClientCtx ctx(orb_);
  e2e_idl::vec_svc::_var svc = e2e_idl::vec_svc::_bind(ctx, "vec-svc");
  e2e_idl::base_svc* as_base = svc.get();
  pardis::String echoed;
  EXPECT_EQ(as_base->ping("up", echoed), e2e_idl::status::OK);
}

TEST_F(IdlE2eTest, SpmdDistributedArgumentsThroughGeneratedStubs) {
  E2eServer server(orb_, 3);
  rts::Domain client("client", 2);
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb_, dctx);
    auto svc = e2e_idl::vec_svc::_spmd_bind(ctx, "vec-svc");

    e2e_idl::dvec v(dctx.comm, 100);
    for (std::size_t li = 0; li < v.local_size(); ++li)
      v.local()[li] = static_cast<double>(v.local_to_global(li));
    EXPECT_DOUBLE_EQ(svc->total(v), 99.0 * 100.0 / 2.0);

    e2e_idl::dvec y(dctx.comm, 100);
    svc->axpy(2.0, v, y);
    for (std::size_t li = 0; li < y.local_size(); ++li)
      EXPECT_DOUBLE_EQ(y.local()[li], 2.0 * static_cast<double>(y.local_to_global(li)));

    // CYCLIC(4) client-side distribution from the lvec typedef.
    e2e_idl::lvec ls(dctx.comm, 50,
                     e2e_idl::lvec_client_spec.instantiate(50, dctx.size));
    for (std::size_t li = 0; li < ls.local_size(); ++li)
      ls.local()[li] = static_cast<pardis::Long>(ls.local_to_global(li));
    EXPECT_EQ(svc->sum_longs(ls), 49 * 50 / 2);
  });
}

TEST_F(IdlE2eTest, SingleMappingStubsUsePlainVectors) {
  E2eServer server(orb_, 2);
  core::ClientCtx ctx(orb_);
  auto svc = e2e_idl::vec_svc::_bind(ctx, "vec-svc");
  std::vector<double> x(20);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(svc->total(x), 19.0 * 20.0 / 2.0);

  std::vector<double> y(20);
  svc->axpy(-1.0, x, y);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(y[i], -x[i]);
}

TEST_F(IdlE2eTest, SingleMappingRejectedOnCollectiveBinding) {
  E2eServer server(orb_, 2);
  rts::Domain client("client", 2);
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb_, dctx);
    auto svc = e2e_idl::vec_svc::_spmd_bind(ctx, "vec-svc");
    std::vector<double> x(4, 1.0);
    EXPECT_THROW(svc->total(x), BadInvOrder);
    rts::barrier(dctx.comm);
  });
}

TEST_F(IdlE2eTest, OnewayStructArgument) {
  E2eServer server(orb_, 2);
  core::ClientCtx ctx(orb_);
  auto svc = e2e_idl::vec_svc::_bind(ctx, "vec-svc");
  svc->log_event(e2e_idl::sample{7, "evt", {3.5}});
  pardis::String echoed;
  svc->ping("fence", echoed);  // sequencing fence
  EXPECT_EQ(server.logs(), 1);
  EXPECT_EQ(server.last_sample().id, 7);
  EXPECT_EQ(server.last_sample().name, "evt");
  ASSERT_EQ(server.last_sample().data.size(), 1u);
}

TEST_F(IdlE2eTest, InOutParameter) {
  E2eServer server(orb_, 1);
  core::ClientCtx ctx(orb_);
  auto svc = e2e_idl::vec_svc::_bind(ctx, "vec-svc");
  pardis::Long v = 10;
  EXPECT_EQ(svc->bump(v, e2e_idl::status::OK), 10);
  EXPECT_EQ(v, 11);
  EXPECT_EQ(svc->bump(v, e2e_idl::status::RETRY), 11);
  EXPECT_EQ(v, 13);
}

TEST_F(IdlE2eTest, SequenceOfStringsReturnValue) {
  E2eServer server(orb_, 1);
  core::ClientCtx ctx(orb_);
  auto svc = e2e_idl::vec_svc::_bind(ctx, "vec-svc");
  e2e_idl::names out = svc->tag_all({"a", "b"}, 2);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "a#0");
  EXPECT_EQ(out[3], "b#1");
}

TEST_F(IdlE2eTest, GeneratedNonBlockingStubs) {
  E2eServer server(orb_, 2);
  rts::Domain client("client", 2);
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb_, dctx);
    auto svc = e2e_idl::vec_svc::_spmd_bind(ctx, "vec-svc");

    e2e_idl::dvec x(dctx.comm, 64);
    for (std::size_t li = 0; li < x.local_size(); ++li)
      x.local()[li] = static_cast<double>(x.local_to_global(li));

    core::Future<e2e_idl::dvec_var> y;
    svc->axpy_nb(3.0, x, y, 64, core::DistSpec::block());
    core::Future<double> t;
    svc->total_nb(x, t);

    e2e_idl::dvec_var y_real = y;  // paper-style blocking conversion
    for (std::size_t li = 0; li < y_real->local_size(); ++li)
      EXPECT_DOUBLE_EQ(y_real->local()[li],
                       3.0 * static_cast<double>(y_real->local_to_global(li)));
    EXPECT_DOUBLE_EQ(t.get(), 63.0 * 64.0 / 2.0);
  });
}

TEST_F(IdlE2eTest, DefaultArgSpecsComeFromTypedefs) {
  auto specs = e2e_idl::POA_vec_svc::_default_arg_specs();
  ASSERT_EQ(specs.count("total"), 1u);
  EXPECT_EQ(specs["total"][0].kind, dist::DistKind::kConcentrated);
  ASSERT_EQ(specs.count("axpy"), 1u);
  ASSERT_EQ(specs["axpy"].size(), 2u);  // x and y
  ASSERT_EQ(specs.count("sum_longs"), 1u);
  EXPECT_EQ(specs["sum_longs"][0].kind, dist::DistKind::kBlock);  // lvec server spec
  EXPECT_EQ(specs.count("ping"), 0u);  // no dseq params -> no entry
}

}  // namespace
