// pardis_ft wall-clock tests: deadline expiry and deadline-triggered
// retry. These depend on real time budgets actually elapsing, so they
// carry the `timing` ctest label and are excluded from sanitizer lanes
// where wall-clock behavior is distorted.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include "ft/ft.hpp"
#include "tests/support/calc_api.hpp"

namespace pardis::core {
namespace {

using calc_api::POA_calc;
using calc_api::vec;

/// counter(ms) counts executions and then busy-polls the POA for `ms`
/// milliseconds of wall time — the §4.2 nested-dispatch pattern, which
/// keeps the server ingesting (and deadline-stamping) queued requests
/// while a long-running operation executes.
class PollingCountingServant : public POA_calc {
 public:
  PollingCountingServant(Poa& poa, std::atomic<int>& calls) : poa_(&poa), calls_(&calls) {}
  double dot(const vec&, const vec&) override { return 0; }
  void scale(double, const vec&, vec&) override {}
  Long counter(Long ms) override {
    ++*calls_;
    const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < until) {
      poa_->process_requests();
      std::this_thread::yield();
    }
    return ms;
  }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  Poa* poa_;
  std::atomic<int>* calls_;
};

struct FtServer {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp{&tb};
  InProcessRegistry reg;
  Orb orb{tp, reg};
  std::atomic<int> exec_count{0};
  rts::Domain domain{"ft-timing-server", 1, tb.host(sim::Testbed::kHost2)};
  Poa* poa = nullptr;

  explicit FtServer(const std::string& name) {
    std::promise<Poa*> pp;
    auto pf = pp.get_future();
    domain.start([this, name, &pp](rts::DomainContext& sctx) {
      Poa p(orb, sctx);
      PollingCountingServant servant(p, exec_count);
      p.activate_spmd(servant, name);
      pp.set_value(&p);
      p.impl_is_ready();
    });
    poa = pf.get();
  }

  void shutdown() {
    poa->deactivate();
    domain.join();
  }
};

// ---------------------------------------------------------------------------
// A reply lost in transit: the client-side deadline converts an
// eternal wait into TimeoutError.
// ---------------------------------------------------------------------------

TEST(FtDeadline, ExpiresWhenTheReplyIsLost) {
  FtServer s("deadline-calc");
  // The first message the server sends back to the (unmodeled) client
  // host is the reply for the invocation below: lose it.
  s.tb.faults().drop_message(sim::Testbed::kHost2, "", 0);

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "deadline-calc");
  proxy->_binding()->set_deadline(std::chrono::milliseconds(150));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(proxy->counter(0), TimeoutError);
  const auto waited = std::chrono::steady_clock::now() - start;
  // The wait honored the budget instead of the default 100 ms pump
  // granularity times forever.
  EXPECT_GE(waited, std::chrono::milliseconds(150));
  EXPECT_LT(waited, std::chrono::seconds(5));
  // The servant did run; only the reply was lost.
  EXPECT_EQ(s.exec_count.load(), 1);
  s.shutdown();
}

// ---------------------------------------------------------------------------
// A request that outwaits its budget in the server queue is rejected
// at dispatch-scheduling time — the servant never runs for it.
// ---------------------------------------------------------------------------

TEST(FtDeadline, ServerQueueRejectionSkipsExpiredDispatch) {
  FtServer s("queue-calc");

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "queue-calc");
  // Invocation A: no deadline; its dispatch polls the POA for 300 ms,
  // so B below is ingested (and its queue wait measured) right away.
  Future<Long> fa;
  proxy->counter_nb(300, fa);
  // Invocation B: 50 ms budget; sequenced behind A, it waits far
  // longer than that in the server queue.
  proxy->_binding()->set_deadline(std::chrono::milliseconds(50));
  Future<Long> fb;
  proxy->counter_nb(0, fb);

  EXPECT_EQ(fa.get(), 300);
  EXPECT_THROW(fb.get(), TimeoutError);
  // B was rejected with kTimeout at scheduling time, not executed: the
  // servant ran exactly once (for A).
  EXPECT_EQ(s.exec_count.load(), 1);
  s.shutdown();
}

// ---------------------------------------------------------------------------
// Deadline-triggered retry of an idempotent invocation whose reply was
// lost: the re-send keeps the request identity, the POA replays the
// already-dispatched sequence number, and the second reply resolves
// the future.
// ---------------------------------------------------------------------------

TEST(FtRetry, DroppedReplyRetriedAndReplayedByThePoa) {
  FtServer s("replay-calc");
  s.tb.faults().drop_message(sim::Testbed::kHost2, "", 0);

  ClientCtx ctx(s.orb);
  auto binding = ::pardis::core::bind(ctx, "replay-calc", "", calc_api::kCalcTypeId);
  binding->set_deadline(std::chrono::milliseconds(100));

  ClientRequest req(*binding, "counter", false, false);
  req.in_value<Long>(7);
  auto out = std::make_shared<Long>(0);
  ft::RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(1);
  const int attempts = ft::with_retry(*binding, "counter", policy, [&](int attempt) {
    auto pending = req.invoke(attempt);
    pending->set_decoder([out](ReplyDecoder& d) { *out = d.out_value<Long>(); });
    return pending;
  });

  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(*out, 7);
  // Attempt 1 executed and its reply was dropped; attempt 2 replayed
  // the dispatch (idempotent) and its reply got through.
  EXPECT_EQ(s.exec_count.load(), 2);
  s.shutdown();
}

}  // namespace
}  // namespace pardis::core
