// Buffers, errors, ids, logging thresholds.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/buffer.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/log.hpp"

namespace pardis {
namespace {

TEST(ByteBuffer, GrowAppendAndClone) {
  ByteBuffer b;
  EXPECT_TRUE(b.empty());
  Octet* p = b.grow(4);
  p[0] = 1;
  p[3] = 4;
  const Octet more[2] = {9, 8};
  b.append_raw(more, 2);
  EXPECT_EQ(b.size(), 6u);
  ByteBuffer c = b.clone();
  EXPECT_EQ(c, b);
  c.mutable_view()[0] = 42;
  EXPECT_NE(c, b);  // clone is independent storage
}

TEST(ByteBuffer, FromSpanCopies) {
  std::vector<Octet> src{1, 2, 3};
  ByteBuffer b = ByteBuffer::from(src);
  src[0] = 99;
  EXPECT_EQ(b.view()[0], 1);
}

TEST(ByteBuffer, MoveLeavesSourceReusable) {
  ByteBuffer a;
  a.grow(16);
  ByteBuffer b = std::move(a);
  EXPECT_EQ(b.size(), 16u);
  a.clear();
  a.grow(2);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Errors, CodesAndNames) {
  EXPECT_STREQ(error_code_name(ErrorCode::kCommFailure), "COMM_FAILURE");
  EXPECT_STREQ(error_code_name(ErrorCode::kObjectNotExist), "OBJECT_NOT_EXIST");
  try {
    throw MarshalError("truncated reply");
  } catch (const SystemException& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMarshal);
    EXPECT_NE(std::string(e.what()).find("MARSHAL"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("truncated reply"), std::string::npos);
  }
}

TEST(Errors, RequireThrowsInternal) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "broken invariant"), InternalError);
}

TEST(Errors, HierarchyCatchableAsSystemException) {
  EXPECT_THROW(
      { throw ObjectNotExist("nobody home"); }, SystemException);
  EXPECT_THROW(
      { throw BadTag("reserved"); }, SystemException);
}

TEST(Ids, MonotoneAndUniqueAcrossThreads) {
  constexpr int kPerThread = 1000;
  std::vector<std::vector<ObjectId>> per_thread(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&per_thread, t] {
      for (int i = 0; i < kPerThread; ++i) per_thread[t].push_back(ObjectId::next());
    });
  for (auto& t : threads) t.join();
  std::set<ObjectId> all;
  for (const auto& v : per_thread)
    for (const auto& id : v) {
      EXPECT_TRUE(id.valid());
      EXPECT_TRUE(all.insert(id).second) << "duplicate " << id.to_string();
    }
  EXPECT_EQ(all.size(), 4u * kPerThread);
}

TEST(Ids, RequestIdsDistinct) {
  RequestId a = RequestId::next();
  RequestId b = RequestId::next();
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(Log, ThresholdGatesOutput) {
  const auto old = log::level();
  log::set_level(log::Level::kError);
  EXPECT_FALSE(log::enabled(log::Level::kDebug));
  EXPECT_TRUE(log::enabled(log::Level::kError));
  log::set_level(old);
}

}  // namespace
}  // namespace pardis
