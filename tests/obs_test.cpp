// pardis_obs: tracing, metrics, and the PIOP wire-format guarantees.
//
// The subsystem promises (a) spans propagate trace context across real
// invocations — the server's dispatch span is parented on the client's
// invoke span; (b) histogram bucket math is exact powers of two;
// (c) metric dumps round-trip the recorded values; (d) with tracing
// off, PIOP headers are byte-identical to the untraced format.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "tests/support/calc_api.hpp"

namespace pardis::obs {
namespace {

using core::ClientCtx;
using core::InProcessRegistry;
using core::Orb;
using core::Poa;

class CalcImpl : public calc_api::POA_calc {
 public:
  double dot(const calc_api::vec& a, const calc_api::vec&) override {
    double s = 0.0;
    for (double v : a.local()) s += v;
    return s;
  }
  void scale(double f, const calc_api::vec& v, calc_api::vec& r) override {
    for (std::size_t li = 0; li < r.local_size(); ++li)
      r.local()[li] = f * v.local()[li];
  }
  Long counter(Long d) override { return d + 1; }
  void note(const std::string&) override {}
  void boom(const std::string& msg) override { throw BadParam(msg); }
};

/// Single-thread SPMD server in its own domain, joined on destruction
/// (joining before reading spans removes the race with the server
/// closing its dispatch span after the reply is already out).
class Server {
 public:
  explicit Server(Orb& orb, const std::string& name) : domain_("obs-server", 1) {
    std::promise<Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([&orb, &pp, name](rts::DomainContext& ctx) {
      Poa poa(orb, ctx);
      CalcImpl servant;
      poa.activate_spmd(servant, name);
      pp.set_value(&poa);
      poa.impl_is_ready();
    });
    poa_ = pf.get();
  }
  ~Server() { stop(); }
  void stop() {
    if (poa_ == nullptr) return;
    poa_->deactivate();
    domain_.join();
    poa_ = nullptr;
  }

 private:
  rts::Domain domain_;
  Poa* poa_ = nullptr;
};

class ObsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    clear_spans();
  }
  void TearDown() override {
    clear_spans();
    set_enabled(false);
  }
};

const SpanRecord* find_span(const std::vector<SpanRecord>& spans,
                            const std::string& name) {
  for (const auto& s : spans)
    if (s.name == name) return &s;
  return nullptr;
}

TEST_F(ObsFixture, TraceContextPropagatesAcrossTcpInvocation) {
  InProcessRegistry registry;
  transport::TcpTransport server_tp(0);
  transport::TcpTransport client_tp(0);
  Orb server_orb(server_tp, registry);
  Orb client_orb(client_tp, registry);

  Server server(server_orb, "obs-calc-tcp");
  {
    ClientCtx ctx(client_orb);
    auto proxy = calc_api::calc::_bind(ctx, "obs-calc-tcp");
    EXPECT_EQ(proxy->counter(41), 42);
  }
  server.stop();  // all server-side spans are closed once the domain joins

  const auto spans = snapshot_spans();
  const SpanRecord* invoke = find_span(spans, "invoke:counter");
  const SpanRecord* dispatch = find_span(spans, "dispatch:counter");
  const SpanRecord* servant = find_span(spans, "servant:counter");
  const SpanRecord* resolve = find_span(spans, "resolve:counter");
  ASSERT_NE(invoke, nullptr);
  ASSERT_NE(dispatch, nullptr);
  ASSERT_NE(servant, nullptr);
  ASSERT_NE(resolve, nullptr);

  // One request, one trace: the server restored the client's context
  // from the PIOP header, and the reply carried it back to the future.
  EXPECT_NE(invoke->trace_id, 0u);
  EXPECT_EQ(dispatch->trace_id, invoke->trace_id);
  EXPECT_EQ(servant->trace_id, invoke->trace_id);
  EXPECT_EQ(resolve->trace_id, invoke->trace_id);

  // Parentage: client invoke -> server dispatch -> servant.
  EXPECT_EQ(dispatch->parent_id, invoke->span_id);
  EXPECT_EQ(servant->parent_id, dispatch->span_id);
  EXPECT_EQ(resolve->parent_id, invoke->span_id);
}

TEST_F(ObsFixture, DisabledModeRecordsNothing) {
  set_enabled(false);
  InProcessRegistry registry;
  transport::LocalTransport tp;
  Orb orb(tp, registry);
  Server server(orb, "obs-calc-off");
  {
    ClientCtx ctx(orb);
    auto proxy = calc_api::calc::_bind(ctx, "obs-calc-off");
    EXPECT_EQ(proxy->counter(1), 2);
  }
  server.stop();
  EXPECT_EQ(span_count(), 0u);
}

TEST(ObsHistogram, BucketMath) {
  // Bucket 0 is [0, 1]; bucket i covers (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.5), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.5), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(1024.0), 10u);
  EXPECT_EQ(Histogram::bucket_index(1025.0), 11u);
  // The last bucket absorbs everything above the largest bound.
  EXPECT_EQ(Histogram::bucket_index(1e30), Histogram::kBuckets - 1);

  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(i),
                     static_cast<double>(std::uint64_t{1} << i));
}

TEST(ObsHistogram, RecordCountSumQuantile) {
  Histogram h;
  h.record(0.5);    // bucket 0
  h.record(3.0);    // bucket 2
  h.record(1000.0); // bucket 10
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 1003.5, 1e-2);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  // Quantiles report the holding bucket's upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1024.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(ObsMetrics, DumpRoundTrip) {
  Registry& reg = Registry::instance();
  reg.counter("test.roundtrip.counter").reset();
  reg.counter("test.roundtrip.counter").add(7);
  reg.histogram("test.roundtrip.hist").reset();
  reg.histogram("test.roundtrip.hist").record(3.0);
  reg.histogram("test.roundtrip.hist").record(100.0);

  // The recorded values come back out of the registry rows...
  bool saw_counter = false;
  for (const auto& row : reg.counters())
    if (row.name == "test.roundtrip.counter") {
      saw_counter = true;
      EXPECT_EQ(row.value, 7u);
    }
  EXPECT_TRUE(saw_counter);
  bool saw_hist = false;
  for (const auto& row : reg.histograms())
    if (row.name == "test.roundtrip.hist") {
      saw_hist = true;
      EXPECT_EQ(row.count, 2u);
      EXPECT_NEAR(row.sum, 103.0, 1e-2);
    }
  EXPECT_TRUE(saw_hist);

  // ...and both dump formats carry them.
  std::ostringstream json;
  reg.dump_json(json);
  EXPECT_NE(json.str().find("\"test.roundtrip.counter\":7"), std::string::npos)
      << json.str();
  EXPECT_NE(json.str().find("\"test.roundtrip.hist\""), std::string::npos);
  std::ostringstream text;
  reg.dump_text(text);
  EXPECT_NE(text.str().find("test.roundtrip.counter 7"), std::string::npos)
      << text.str();

  reg.counter("test.roundtrip.counter").reset();
  reg.histogram("test.roundtrip.hist").reset();
}

// The wire-format guarantee the whole subsystem leans on: without a
// trace context the headers marshal to exactly the untraced layout —
// enabling the obs build costs zero bytes on every PIOP message.
TEST(ObsWire, UntracedRequestHeaderIsByteIdentical) {
  core::RequestHeader h;
  h.request_id.value = 11;
  h.binding_id = 22;
  h.seq_no = 3;
  h.object_id.value = 44;
  h.operation = "solve";
  h.flags = core::kFlagOneway;
  h.client_rank = 1;
  h.client_size = 2;
  h.reply_to.kind = transport::AddrKind::kLocal;
  h.reply_to.local_id = 9;

  ByteBuffer got;
  CdrWriter gw(got);
  h.marshal(gw);

  // The untraced layout, written field by field.
  ByteBuffer expected;
  CdrWriter ew(expected);
  ew.write_ulonglong(11);
  ew.write_ulonglong(22);
  ew.write_ulong(3);
  ew.write_ulonglong(44);
  ew.write_string("solve");
  ew.write_octet(core::kFlagOneway);
  ew.write_long(1);
  ew.write_long(2);
  h.reply_to.marshal(ew);

  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(std::memcmp(got.data(), expected.data(), got.size()), 0);
}

TEST(ObsWire, UntracedReplyHeaderIsByteIdentical) {
  core::ReplyHeader h;
  h.request_id.value = 11;
  h.server_rank = 0;
  h.server_size = 4;
  h.status = core::ReplyStatus::kOk;

  ByteBuffer got;
  CdrWriter gw(got);
  h.marshal(gw);

  ByteBuffer expected;
  CdrWriter ew(expected);
  ew.write_ulonglong(11);
  ew.write_long(0);
  ew.write_long(4);
  ew.write_octet(static_cast<Octet>(core::ReplyStatus::kOk));

  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(std::memcmp(got.data(), expected.data(), got.size()), 0);
}

TEST(ObsWire, TracedHeadersRoundTrip) {
  core::RequestHeader h;
  h.request_id.value = 5;
  h.object_id.value = 6;
  h.operation = "dot";
  h.client_rank = 0;
  h.client_size = 1;
  h.reply_to.kind = transport::AddrKind::kLocal;
  h.reply_to.local_id = 1;
  h.trace = TraceContext{0xabcdef12345678, 0x1122334455};

  ByteBuffer buf;
  CdrWriter w(buf);
  h.marshal(w);
  CdrReader r(buf.view());
  core::RequestHeader back = core::RequestHeader::unmarshal(r);
  EXPECT_EQ(back.trace.trace_id, h.trace.trace_id);
  EXPECT_EQ(back.trace.span_id, h.trace.span_id);
  EXPECT_EQ(back.flags, 0);  // the wire-only traced flag is stripped

  core::ReplyHeader rep;
  rep.request_id.value = 5;
  rep.server_rank = 0;
  rep.server_size = 1;
  rep.status = core::ReplyStatus::kOk;
  rep.trace = TraceContext{0xabcdef12345678, 0x99};
  ByteBuffer rbuf;
  CdrWriter rw(rbuf);
  rep.marshal(rw);
  CdrReader rr(rbuf.view());
  core::ReplyHeader rback = core::ReplyHeader::unmarshal(rr);
  EXPECT_EQ(rback.status, core::ReplyStatus::kOk);
  EXPECT_EQ(rback.trace.trace_id, rep.trace.trace_id);
  EXPECT_EQ(rback.trace.span_id, rep.trace.span_id);
}

TEST(ObsCounter, StripedAddsSum) {
  Counter c;
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace pardis::obs
