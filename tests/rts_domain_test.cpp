// Domain lifecycle, error propagation, virtual-time composition.
#include <gtest/gtest.h>

#include <atomic>

#include "rts/collectives.hpp"
#include "rts/domain.hpp"

namespace pardis::rts {
namespace {

TEST(DomainTest, RunExecutesEveryRankOnce) {
  Domain d("counts", 6);
  std::atomic<int> total{0};
  std::atomic<int> rank_mask{0};
  d.run([&](DomainContext& ctx) {
    total.fetch_add(1);
    rank_mask.fetch_or(1 << ctx.rank);
    EXPECT_EQ(ctx.size, 6);
    EXPECT_EQ(&ctx.comm, &ctx.domain.comms().comm(ctx.rank));
  });
  EXPECT_EQ(total.load(), 6);
  EXPECT_EQ(rank_mask.load(), 0b111111);
}

TEST(DomainTest, ExceptionInAnyThreadPropagates) {
  Domain d("throws", 4);
  EXPECT_THROW(d.run([](DomainContext& ctx) {
    if (ctx.rank == 2) throw BadParam("rank 2 exploded");
  }),
               BadParam);
  // The domain is reusable after a failed run.
  d.run([](DomainContext&) {});
}

TEST(DomainTest, StartJoinAsync) {
  Domain d("async", 2);
  std::atomic<bool> go{false};
  d.start([&](DomainContext&) {
    while (!go.load()) std::this_thread::yield();
  });
  EXPECT_TRUE(d.running());
  EXPECT_THROW(d.start([](DomainContext&) {}), BadInvOrder);
  go = true;
  d.join();
  EXPECT_FALSE(d.running());
}

TEST(DomainTest, ChargeFlopsWithoutHostIsNoop) {
  Domain d("nohost", 2);
  d.run([](DomainContext& ctx) {
    ctx.charge_flops(1e12);
    EXPECT_EQ(ctx.clock.now(), 0.0);
  });
  EXPECT_EQ(d.max_sim_time(), 0.0);
}

TEST(DomainTest, VirtualTimeMaxAcrossThreads) {
  sim::HostModel host{.name = "H", .gflops = 1.0};
  Domain d("timed", 3, &host);
  d.run([](DomainContext& ctx) {
    // rank r charges (r+1) GFLOP at 1 GFLOP/s => r+1 seconds
    ctx.charge_flops(1e9 * (ctx.rank + 1));
  });
  EXPECT_DOUBLE_EQ(d.max_sim_time(), 3.0);
  d.reset_clocks();
  EXPECT_DOUBLE_EQ(d.max_sim_time(), 0.0);
}

TEST(DomainTest, OverlapAlgebraMatchesPaperFormula) {
  // Reproduces the Fig. 2 caption formula t = t_o + max(t_i, t_d):
  // rank 0 "invokes" rank 1 (cost t_o up), both compute, rank 0 gets
  // the result back (cost t_o down) — elapsed = 2*t_o + max work.
  sim::HostModel host{.name = "H",
                      .gflops = 1.0,
                      .intra_latency_s = 0.5,
                      .intra_bandwidth_bps = 1e12};
  Domain d("overlap", 2, &host);
  d.run([](DomainContext& ctx) {
    if (ctx.rank == 0) {
      ctx.comm.send_reserved(1, kTagPackage, ByteBuffer{});  // request
      ctx.charge_flops(2e9);                                 // local work: 2 s
      ctx.comm.recv(1, kTagPackage);                         // reply
    } else {
      ctx.comm.recv(0, kTagPackage);
      ctx.charge_flops(4e9);  // remote work: 4 s
      ctx.comm.send_reserved(0, kTagPackage, ByteBuffer{});
    }
  });
  // t = 0.5 (request) + max(2, 4) + 0.5 (reply) = 5.0 on rank 0.
  EXPECT_DOUBLE_EQ(d.clock(0).now(), 5.0);
  EXPECT_DOUBLE_EQ(d.max_sim_time(), 5.0);
}

TEST(DomainTest, OversubscriptionOnlyWarns) {
  sim::HostModel host{.name = "tiny", .gflops = 1.0, .max_threads = 1};
  Domain d("oversub", 4, &host);  // warns, still works
  d.run([](DomainContext& ctx) { barrier(ctx.comm); });
}

}  // namespace
}  // namespace pardis::rts
