// pardis_check: the runtime SPMD-discipline verifier.
//
// The headline guarantee: discipline violations that today surface as
// hangs (mismatched collectives) or silent data races (cross-rank
// writes) become located check::Violation diagnostics — and with the
// toggle off, behavior and wire bytes are exactly the unchecked
// build's.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "check/check.hpp"
#include "check/collective.hpp"
#include "core/future.hpp"
#include "core/protocol.hpp"
#include "dist/dsequence.hpp"
#include "rts/collectives.hpp"
#include "rts/domain.hpp"

namespace pardis {
namespace {

/// Flips the verifier on (or off) for one test and restores the
/// default-off state on exit, so test order never matters.
class CheckGuard {
 public:
  explicit CheckGuard(bool on) { check::set_enabled(on); }
  ~CheckGuard() { check::set_enabled(false); }
};

// ---------------------------------------------------------------------------
// Collective-ordering fingerprints

TEST(CheckCollective, SkewedCollectiveIsDiagnosedNotHung) {
  CheckGuard guard(true);
  rts::Domain d("skew", 2);
  try {
    d.run([](rts::DomainContext& ctx) {
      // Rank 0 enters a barrier while rank 1 enters a broadcast: the
      // classic SPMD ordering bug. Unchecked, the cross-matched
      // sends/recvs deadlock; the verifier must turn it into a
      // diagnostic naming both call sites (the 120 s test timeout is
      // the hang detector).
      if (ctx.rank == 0) {
        rts::barrier(ctx.comm);
      } else {
        rts::broadcast(ctx.comm, ByteBuffer{}, 0);
      }
    });
    FAIL() << "expected check::Violation";
  } catch (const check::Violation& v) {
    const std::string msg = v.what();
    EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rts::barrier"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rts::broadcast"), std::string::npos) << msg;
  }
}

TEST(CheckCollective, RootMismatchIsDiagnosed) {
  CheckGuard guard(true);
  rts::Domain d("rootskew", 2);
  try {
    d.run([](rts::DomainContext& ctx) {
      rts::broadcast(ctx.comm, ByteBuffer{}, ctx.rank == 0 ? 0 : 1);
    });
    FAIL() << "expected check::Violation";
  } catch (const check::Violation& v) {
    EXPECT_NE(std::string(v.what()).find("root="), std::string::npos) << v.what();
  }
}

TEST(CheckCollective, MatchingCollectivesRunNormally) {
  CheckGuard guard(true);
  rts::Domain d("clean", 4);
  d.run([](rts::DomainContext& ctx) {
    rts::barrier(ctx.comm);
    const int v = rts::broadcast_value<int>(ctx.comm, ctx.rank == 0 ? 42 : -1, 0);
    EXPECT_EQ(v, 42);
    auto all = rts::allgather_values<int>(ctx.comm, ctx.rank);
    ASSERT_EQ(static_cast<int>(all.size()), ctx.size);
    for (int r = 0; r < ctx.size; ++r) EXPECT_EQ(all[r], r);
    rts::barrier(ctx.comm);
  });
}

TEST(CheckCollective, SingleRankNeedsNoVerification) {
  CheckGuard guard(true);
  rts::Domain d("one", 1);
  d.run([](rts::DomainContext& ctx) {
    rts::barrier(ctx.comm);
    EXPECT_EQ(rts::broadcast_value<int>(ctx.comm, 7, 0), 7);
  });
}

// ---------------------------------------------------------------------------
// DSequence rank-ownership tracking

TEST(CheckDSequence, CrossRankWriteAccessIsFlagged) {
  CheckGuard guard(true);
  rts::Domain d("dseq_write", 2);
  try {
    d.run([](rts::DomainContext& ctx) {
      dist::DSequence<double> seq(ctx.comm, 8);  // BLOCK: rank 0 owns [0,4)
      if (ctx.rank == 1) seq[0] = 3.0;
    });
    FAIL() << "expected check::Violation";
  } catch (const check::Violation& v) {
    const std::string msg = v.what();
    EXPECT_NE(msg.find("cross-rank write"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
  }
}

TEST(CheckDSequence, OwnedWritesAndRemoteReadsStayLegal) {
  CheckGuard guard(true);
  rts::Domain d("dseq_ok", 2);
  d.run([](rts::DomainContext& ctx) {
    dist::DSequence<double> seq(ctx.comm, 8);
    for (std::size_t g = 0; g < 8; ++g) {
      if (seq.is_local(g)) seq[g] = static_cast<double>(g);  // owned writes
    }
    rts::barrier(ctx.comm);
    // Remote reads stay location-transparent through the const path.
    const auto& cseq = seq;
    for (std::size_t g = 0; g < 8; ++g) EXPECT_EQ(cseq[g], static_cast<double>(g));
    rts::barrier(ctx.comm);
  });
}

TEST(CheckDSequence, UncheckedCrossRankWriteStillWorksMechanically) {
  // Toggle off: the shared-memory directory write path behaves exactly
  // as before the verifier existed.
  CheckGuard guard(false);
  rts::Domain d("dseq_off", 2);
  d.run([](rts::DomainContext& ctx) {
    dist::DSequence<double> seq(ctx.comm, 8);
    if (ctx.rank == 1) seq[0] = 3.0;  // rank 0's element, via the directory
    rts::barrier(ctx.comm);
    if (ctx.rank == 0) {
      EXPECT_EQ(seq.local()[0], 3.0);
    }
    rts::barrier(ctx.comm);
  });
}

// ---------------------------------------------------------------------------
// Reserved-tag policing

TEST(CheckTags, UnassignedReservedTagIsFlagged) {
  CheckGuard guard(true);
  rts::ThreadCommGroup g(2);
  EXPECT_THROW(g.comm(0).send_reserved(1, rts::kReservedTagBase + 100, ByteBuffer{}),
               check::Violation);
}

TEST(CheckTags, KnownProtocolTagsPass) {
  CheckGuard guard(true);
  rts::ThreadCommGroup g(2);
  g.comm(0).send_reserved(1, rts::kTagCollective, ByteBuffer{});
  g.comm(0).send_reserved(1, rts::kTagCheck, ByteBuffer{});
  g.comm(0).send(1, 17, ByteBuffer{});  // user tag
  EXPECT_TRUE(g.comm(1).try_recv(0, rts::kTagCollective).has_value());
  EXPECT_TRUE(g.comm(1).try_recv(0, rts::kTagCheck).has_value());
  EXPECT_TRUE(g.comm(1).try_recv(0, 17).has_value());
}

TEST(CheckTags, UnassignedReservedTagAllowedWhenOff) {
  CheckGuard guard(false);
  rts::ThreadCommGroup g(2);
  g.comm(0).send_reserved(1, rts::kReservedTagBase + 100, ByteBuffer{});
  EXPECT_TRUE(g.comm(1).try_recv(0, rts::kReservedTagBase + 100).has_value());
}

// ---------------------------------------------------------------------------
// Future one-shot discipline

TEST(CheckFuture, RebindingAResolvedFutureIsFlagged) {
  CheckGuard guard(true);
  auto f = core::Future<int>::ready(7);
  EXPECT_THROW(f._bind(nullptr, std::make_shared<int>(1)), check::Violation);
  EXPECT_EQ(f.get(), 7);  // original binding intact
}

TEST(CheckFuture, RebindingAllowedWhenOff) {
  CheckGuard guard(false);
  auto f = core::Future<int>::ready(7);
  f._bind(nullptr, std::make_shared<int>(1));
  EXPECT_EQ(f.get(), 1);
}

// ---------------------------------------------------------------------------
// Toggle-off byte identity (the wire-format guarantee, as pinned for
// obs): enabling the verifier adds no bytes to any PIOP header.

TEST(CheckWire, RequestHeaderBytesIdenticalWithToggleOnAndOff) {
  core::RequestHeader h;
  h.request_id.value = 11;
  h.binding_id = 22;
  h.seq_no = 3;
  h.object_id.value = 44;
  h.operation = "solve";
  h.client_rank = 1;
  h.client_size = 2;
  h.reply_to.kind = transport::AddrKind::kLocal;
  h.reply_to.local_id = 9;

  ByteBuffer off;
  {
    CheckGuard guard(false);
    CdrWriter w(off);
    h.marshal(w);
  }
  ByteBuffer on;
  {
    CheckGuard guard(true);
    CdrWriter w(on);
    h.marshal(w);
  }
  ASSERT_EQ(on.size(), off.size());
  EXPECT_EQ(std::memcmp(on.data(), off.data(), on.size()), 0);
}

}  // namespace
}  // namespace pardis
