// pardis_flow tests: reconnecting transport sessions (sever → heal
// completes every pending future with zero duplicate dispatches), POA
// admission control (shed past the high watermark, expired requests
// shed first), client-side in-flight windows, bounded endpoint queues,
// and wire compatibility when every flow feature is disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include "check/check.hpp"
#include "flow/session_transport.hpp"
#include "ft/ft.hpp"
#include "tests/support/calc_api.hpp"

namespace pardis::core {
namespace {

using calc_api::POA_calc;
using calc_api::vec;
using namespace std::chrono_literals;

/// Spins (bounded) until `pred` holds; false = timed out.
template <typename Pred>
bool spin_until(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

ByteBuffer text_payload(const std::string& text) {
  ByteBuffer b;
  CdrWriter w(b);
  w.write_string(text);
  return b;
}

// ---------------------------------------------------------------------------
// FaultPlan healing: sever is no longer terminal.
// ---------------------------------------------------------------------------

TEST(FaultPlanHeal, HealLinkRestoresBothDirections) {
  sim::FaultPlan plan;
  plan.sever_link("A", "B");
  EXPECT_TRUE(plan.on_message("A", "B", 0).sever);
  EXPECT_TRUE(plan.on_message("B", "A", 0).sever);
  plan.heal_link("A", "B");
  EXPECT_FALSE(plan.on_message("A", "B", 0).faulty());
  EXPECT_FALSE(plan.on_message("B", "A", 0).faulty());
}

TEST(FaultPlanHeal, HealAtIndexLiftsSeverWhenIndexReached) {
  sim::FaultPlan plan;
  plan.sever_link("A", "B");
  // The sever lifts when A→B's message counter reaches index 2 — "the
  // third redial succeeds" — and heals the whole link, replies too.
  plan.heal_link_at("A", "B", 2);
  EXPECT_TRUE(plan.on_message("A", "B", 0).sever);   // index 0
  EXPECT_TRUE(plan.on_message("A", "B", 0).sever);   // index 1
  EXPECT_FALSE(plan.on_message("A", "B", 0).faulty());  // index 2: healed
  EXPECT_FALSE(plan.on_message("B", "A", 0).faulty());  // reverse healed too
}

TEST(FaultPlanHeal, HealAfterElapsedTimeHealsOnNextMessage) {
  sim::FaultPlan plan;
  plan.sever_link("A", "B");
  plan.heal_link_after("A", "B", 0.0);  // deadline already passed
  EXPECT_FALSE(plan.on_message("B", "A", 0).faulty());
  EXPECT_FALSE(plan.on_message("A", "B", 0).faulty());
}

// ---------------------------------------------------------------------------
// Wire compatibility: with no retry-after hint the reply header is
// byte-identical to the pre-flow format.
// ---------------------------------------------------------------------------

TEST(FlowWireCompat, HintFreeReplyHeaderBytesUnchanged) {
  ReplyHeader h;
  h.request_id.value = 7;
  h.server_rank = 1;
  h.server_size = 2;
  h.status = ReplyStatus::kSystemException;
  h.error_code = ErrorCode::kTimeout;
  h.error_message = "late";

  ByteBuffer now;
  CdrWriter w(now);
  h.marshal(w);

  // The pre-flow wire format, written field by field by hand.
  ByteBuffer old;
  CdrWriter ow(old);
  ow.write_ulonglong(7);  // request_id
  ow.write_long(1);       // server_rank
  ow.write_long(2);       // server_size
  ow.write_octet(static_cast<Octet>(ReplyStatus::kSystemException));
  ow.write_octet(static_cast<Octet>(ErrorCode::kTimeout));
  ow.write_string("late");

  EXPECT_EQ(now, old);
}

TEST(FlowWireCompat, RetryAfterRoundTripsAndFlagIsCleared) {
  ReplyHeader h;
  h.request_id.value = 9;
  h.status = ReplyStatus::kSystemException;
  h.error_code = ErrorCode::kOverload;
  h.error_message = "shed";
  h.retry_after_ms = 25;

  ByteBuffer buf;
  CdrWriter w(buf);
  h.marshal(w);
  CdrReader r(buf.view());
  const ReplyHeader back = ReplyHeader::unmarshal(r);
  EXPECT_EQ(back.status, ReplyStatus::kSystemException);
  EXPECT_EQ(back.error_code, ErrorCode::kOverload);
  EXPECT_EQ(back.retry_after_ms, 25u);
}

// ---------------------------------------------------------------------------
// SessionTransport wire behavior.
// ---------------------------------------------------------------------------

TEST(FlowSessionWire, DisabledSessionTransportIsPassThrough) {
  transport::LocalTransport inner;
  flow::SessionTransport st(inner, flow::SessionTransport::Options{});  // disabled
  auto ep = st.create_endpoint("");

  st.rsr(ep->addr(), transport::kHandlerOrbRequest, text_payload("raw"), "");
  auto msg = ep->poll();
  ASSERT_TRUE(msg.has_value());
  // No envelope, no filter, no session state: the bytes on the queue
  // are exactly what an undecorated transport would have delivered.
  EXPECT_EQ(msg->handler, transport::kHandlerOrbRequest);
  EXPECT_EQ(msg->payload, text_payload("raw"));
  EXPECT_EQ(st.unacked(ep->addr()), 0u);
}

TEST(FlowSessionWire, SessionDedupsInjectedDuplicateFrame) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport inner(&tb);
  flow::SessionTransport::Options opts;
  opts.enabled = true;
  flow::SessionTransport st(inner, opts);
  auto ep = st.create_endpoint(sim::Testbed::kHost2);

  // The first session frame is delivered twice; the receiver drops the
  // replay by sequence number and re-acks, so exactly one inner
  // message reaches the queue and nothing stays unacked.
  tb.faults().duplicate_message("", sim::Testbed::kHost2, 0);
  st.rsr(ep->addr(), transport::kHandlerOrbRequest, text_payload("once"), "");

  auto msg = ep->poll();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->handler, transport::kHandlerOrbRequest);
  EXPECT_EQ(msg->payload, text_payload("once"));
  EXPECT_FALSE(ep->poll().has_value());
  EXPECT_EQ(st.unacked(ep->addr()), 0u);
}

// ---------------------------------------------------------------------------
// Shared servant/fixture machinery.
// ---------------------------------------------------------------------------

/// calc servant whose counter(d < 0) parks until the test releases it.
/// With a Poa supplied, the parked execution keeps polling
/// process_requests() (the paper's §4.2 nested-dispatch idiom), so
/// requests arriving meanwhile reach the admission controller.
class ParkServant : public POA_calc {
 public:
  ParkServant(std::atomic<int>& exec, std::atomic<bool>& entered,
              std::atomic<bool>& release, Poa* poa)
      : exec_(&exec), entered_(&entered), release_(&release), poa_(poa) {}
  double dot(const vec&, const vec&) override { return 0; }
  void scale(double, const vec&, vec&) override {}
  Long counter(Long d) override {
    ++*exec_;
    if (d < 0) {
      entered_->store(true);
      while (!release_->load()) {
        if (poa_ != nullptr) poa_->process_requests();
        std::this_thread::yield();
      }
    }
    return d;
  }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  std::atomic<int>* exec_;
  std::atomic<bool>* entered_;
  std::atomic<bool>* release_;
  Poa* poa_;
};

/// Server of `nranks` computing threads on a modeled host (clients
/// stay unmodeled so every message takes the fault-injectable
/// transport path), with a ParkServant and a configurable OrbConfig.
struct FlowServer {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp{&tb};
  InProcessRegistry reg;
  Orb orb;
  std::atomic<int> exec{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  rts::Domain domain;
  Poa* poa = nullptr;  ///< rank 0's POA

  FlowServer(const std::string& name, const OrbConfig& cfg, bool polling,
             int nranks = 1)
      : orb(tp, reg, cfg),
        domain("flow-server", nranks, tb.host(sim::Testbed::kHost2)) {
    std::promise<Poa*> pp;
    auto pf = pp.get_future();
    domain.start([this, name, polling, &pp](rts::DomainContext& sctx) {
      Poa p(orb, sctx);
      ParkServant servant(exec, entered, release, polling ? &p : nullptr);
      p.activate_spmd(servant, name);
      if (sctx.rank == 0) pp.set_value(&p);
      p.impl_is_ready();
    });
    poa = pf.get();
  }

  ~FlowServer() {
    release.store(true);
    poa->deactivate();
    domain.join();
  }
};

/// Like FlowServer, but the whole ORB runs over a SessionTransport.
struct SessionServer {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport inner{&tb};
  flow::SessionTransport st;
  InProcessRegistry reg;
  Orb orb;
  std::atomic<int> exec{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  rts::Domain domain;
  Poa* poa = nullptr;

  SessionServer(const std::string& name, const flow::SessionTransport::Options& opts)
      : st(inner, opts),
        orb(st, reg),
        domain("flow-session-server", 1, tb.host(sim::Testbed::kHost2)) {
    std::promise<Poa*> pp;
    auto pf = pp.get_future();
    domain.start([this, name, &pp](rts::DomainContext& sctx) {
      Poa p(orb, sctx);
      ParkServant servant(exec, entered, release, nullptr);
      p.activate_spmd(servant, name);
      pp.set_value(&p);
      p.impl_is_ready();
    });
    poa = pf.get();
  }

  ~SessionServer() {
    release.store(true);
    poa->deactivate();
    domain.join();
  }
};

// ---------------------------------------------------------------------------
// Reconnecting sessions end to end.
// ---------------------------------------------------------------------------

TEST(FlowSession, SeverThenHealCompletesEveryPendingFuture) {
  flow::SessionTransport::Options opts;
  opts.enabled = true;
  opts.max_reconnects = 100;
  opts.backoff_ms = 1;
  SessionServer s("heal-calc", opts);

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "heal-calc");
  Future<Long> f1, f2;
  proxy->counter_nb(-1, f1);  // parks in the servant
  ASSERT_TRUE(spin_until([&] { return s.entered.load(); }));
  proxy->counter_nb(7, f2);  // delivered; waits behind the parked call

  // Cut the client↔server link while both replies are outstanding and
  // schedule it to heal 20 ms later. The reply sends hit CommFailure,
  // redial with backoff, and replay once the link is back — the healed
  // outage must not break a single future.
  s.tb.faults().sever_link(sim::Testbed::kHost2, "");
  s.tb.faults().heal_link_after(sim::Testbed::kHost2, "", 0.02);
  s.release.store(true);

  EXPECT_EQ(f1.get(), -1);
  EXPECT_EQ(f2.get(), 7);
  // Replay resumed the session rather than re-executing anything: each
  // request dispatched exactly once.
  EXPECT_EQ(s.exec.load(), 2);
}

TEST(FlowSession, TcpSeverThenHealCompletesEveryPendingFuture) {
  // The same sever→heal outage over real sockets: client and server
  // each run their own ORB over a session-wrapped TcpTransport, and
  // the fault plan cuts the modeled link between their host models.
  flow::SessionTransport::Options opts;
  opts.enabled = true;
  opts.max_reconnects = 100;
  opts.backoff_ms = 1;

  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::TcpTransport server_inner(0, &tb);
  flow::SessionTransport server_st(server_inner, opts);
  transport::TcpTransport client_inner(0, &tb);
  flow::SessionTransport client_st(client_inner, opts);
  InProcessRegistry reg;
  Orb server_orb(server_st, reg);
  Orb client_orb(client_st, reg);

  std::atomic<int> exec{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  rts::Domain domain("flow-tcp-server", 1, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  domain.start([&](rts::DomainContext& sctx) {
    Poa p(server_orb, sctx);
    ParkServant servant(exec, entered, release, nullptr);
    p.activate_spmd(servant, "tcp-heal-calc");
    pp.set_value(&p);
    p.impl_is_ready();
  });
  Poa* poa = pf.get();

  {
    ClientCtx ctx(client_orb);
    auto proxy = calc_api::calc::_bind(ctx, "tcp-heal-calc");
    Future<Long> f1, f2;
    proxy->counter_nb(-1, f1);  // parks in the servant
    ASSERT_TRUE(spin_until([&] { return entered.load(); }));
    proxy->counter_nb(7, f2);

    tb.faults().sever_link(sim::Testbed::kHost2, "");
    tb.faults().heal_link_after(sim::Testbed::kHost2, "", 0.02);
    release.store(true);

    EXPECT_EQ(f1.get(), -1);
    EXPECT_EQ(f2.get(), 7);
    EXPECT_EQ(exec.load(), 2);  // replayed, never re-executed
  }

  release.store(true);
  poa->deactivate();
  domain.join();
}

TEST(FlowSession, ReconnectBudgetExhaustionEscalatesThenRecovers) {
  flow::SessionTransport::Options opts;
  opts.enabled = true;
  opts.max_reconnects = 2;
  opts.backoff_ms = 1;
  SessionServer s("lost-calc", opts);
  s.release.store(true);  // never park

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "lost-calc");
  EXPECT_EQ(proxy->counter(1), 1);  // session established over a healthy link

  // An outage longer than the reconnect budget: only then does
  // CommFailure escalate to the caller.
  s.tb.faults().sever_link("", sim::Testbed::kHost2);
  EXPECT_THROW(proxy->counter(2), CommFailure);

  // The link heals. A fresh binding's next invocation reconnects and
  // goes through — the receiver resyncs past the lost frame instead of
  // wedging the session.
  s.tb.faults().heal_link("", sim::Testbed::kHost2);
  auto proxy2 = calc_api::calc::_bind(ctx, "lost-calc");
  EXPECT_EQ(proxy2->counter(3), 3);
  EXPECT_EQ(s.exec.load(), 2);  // the severed request never executed
}

// ---------------------------------------------------------------------------
// POA admission control.
// ---------------------------------------------------------------------------

TEST(FlowOverload, ShedsPastHighWatermarkWithRetryAfterHint) {
  OrbConfig cfg;
  cfg.poa_high_watermark = 3;
  cfg.poa_low_watermark = 1;
  cfg.overload_retry_after = 25ms;
  FlowServer s("shed-calc", cfg, /*polling=*/true);

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "shed-calc");
  Future<Long> fa;
  proxy->counter_nb(-1, fa);  // parks (and polls) in the servant
  ASSERT_TRUE(spin_until([&] { return s.entered.load(); }));

  // Three live requests queue behind the parked one (same binding:
  // invocation order holds them until it returns).
  Future<Long> fb1, fb2, fb3;
  proxy->counter_nb(1, fb1);
  proxy->counter_nb(2, fb2);
  proxy->counter_nb(3, fb3);
  ASSERT_TRUE(spin_until([&] { return s.poa->pending_requests() == 3; }));

  // The queue sits at the high watermark: the next request is shed
  // with kOverload, carrying the configured retry-after hint.
  Future<Long> fc;
  proxy->counter_nb(9, fc);
  try {
    fc.get();
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.retry_after_ms(), 25u);
  }

  s.release.store(true);
  EXPECT_EQ(fa.get(), -1);
  EXPECT_EQ(fb1.get(), 1);
  EXPECT_EQ(fb2.get(), 2);
  EXPECT_EQ(fb3.get(), 3);
  EXPECT_EQ(s.exec.load(), 4);  // the shed request never dispatched

  // Hysteresis: the queue drained below the low watermark, so a new
  // request is admitted again.
  EXPECT_EQ(proxy->counter(6), 6);
  EXPECT_EQ(s.exec.load(), 5);
}

TEST(FlowOverload, ExpiredRequestsDoNotDefendQueueSeats) {
  OrbConfig cfg;
  cfg.poa_high_watermark = 3;
  cfg.poa_low_watermark = 1;
  cfg.overload_retry_after = 25ms;
  FlowServer s("expire-calc", cfg, /*polling=*/true);

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "expire-calc");
  Future<Long> fa;
  proxy->counter_nb(-1, fa);
  ASSERT_TRUE(spin_until([&] { return s.entered.load(); }));

  // Three deadline-carrying requests queue up, then outwait their
  // budget in the server queue.
  proxy->_binding()->set_deadline(1ms);
  Future<Long> fe1, fe2, fe3;
  proxy->counter_nb(1, fe1);
  proxy->counter_nb(2, fe2);
  proxy->counter_nb(3, fe3);
  ASSERT_TRUE(spin_until([&] { return s.poa->pending_requests() == 3; }));
  std::this_thread::sleep_for(10ms);

  // The queue is at the high watermark, but every seat is held by an
  // expired request — those shed first (they answer kTimeout without
  // running the servant), so the live request is admitted, not shed.
  proxy->_binding()->set_deadline(0ms);
  Future<Long> fc;
  proxy->counter_nb(9, fc);
  s.release.store(true);

  EXPECT_EQ(fc.get(), 9);
  EXPECT_EQ(fa.get(), -1);
  EXPECT_THROW(fe1.get(), TimeoutError);
  EXPECT_THROW(fe2.get(), TimeoutError);
  EXPECT_THROW(fe3.get(), TimeoutError);
  EXPECT_EQ(s.exec.load(), 2);  // only the parked call and the live one ran
}

TEST(FlowOverload, WithRetryRidesOutOverload) {
  OrbConfig cfg;
  cfg.poa_high_watermark = 3;
  cfg.poa_low_watermark = 1;
  cfg.overload_retry_after = 20ms;
  FlowServer s("retry-calc", cfg, /*polling=*/true);

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "retry-calc");
  Future<Long> fa;
  proxy->counter_nb(-1, fa);
  ASSERT_TRUE(spin_until([&] { return s.entered.load(); }));
  Future<Long> fb1, fb2, fb3;
  proxy->counter_nb(1, fb1);
  proxy->counter_nb(2, fb2);
  proxy->counter_nb(3, fb3);
  ASSERT_TRUE(spin_until([&] { return s.poa->pending_requests() == 3; }));

  // The overload clears shortly after the first attempt is shed; the
  // retry-after hint paces with_retry past the outage.
  std::thread releaser([&] {
    std::this_thread::sleep_for(5ms);
    s.release.store(true);
  });

  ClientRequest req(*proxy->_binding(), "counter", false, false);
  req.in_value<Long>(9);
  auto out = std::make_shared<Long>(0);
  ft::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = 1ms;
  const int attempts = ft::with_retry(*proxy->_binding(), "counter", policy,
                                      [&](int attempt) {
                                        auto pending = req.invoke(attempt);
                                        pending->set_decoder([out](ReplyDecoder& d) {
                                          *out = d.out_value<Long>();
                                        });
                                        return pending;
                                      });
  releaser.join();

  EXPECT_GE(attempts, 2);  // at least the shed attempt plus the retry
  EXPECT_EQ(*out, 9);
  EXPECT_EQ(fa.get(), -1);
  EXPECT_EQ(fb1.get(), 1);
  EXPECT_EQ(s.exec.load(), 5);  // no shed attempt ever reached the servant
}

TEST(FlowOverload, LowWatermarkAtOrAboveHighIsClamped) {
  OrbConfig cfg;
  cfg.poa_high_watermark = 2;
  cfg.poa_low_watermark = 9;  // degenerate: hysteresis band inverted
  FlowServer s("clamp-calc", cfg, /*polling=*/false);
  EXPECT_EQ(s.poa->high_watermark(), 2u);
  EXPECT_EQ(s.poa->low_watermark(), 1u);  // clamped to high - 1
}

TEST(FlowOverload, SpmdShedIsCoordinatedAcrossRanks) {
  OrbConfig cfg;
  cfg.poa_high_watermark = 3;
  cfg.poa_low_watermark = 1;
  cfg.overload_retry_after = 25ms;
  FlowServer s("spmd-shed-calc", cfg, /*polling=*/true, /*nranks=*/2);

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "spmd-shed-calc");
  Future<Long> fa;
  proxy->counter_nb(-1, fa);  // parks (and polls) on every rank
  ASSERT_TRUE(spin_until([&] { return s.exec.load() == 2; }));

  Future<Long> fb1, fb2, fb3;
  proxy->counter_nb(1, fb1);
  proxy->counter_nb(2, fb2);
  proxy->counter_nb(3, fb3);
  ASSERT_TRUE(spin_until([&] { return s.poa->pending_requests() == 3; }));

  // Rank 0 is the sole shed authority for an SPMD object: it rejects
  // the fourth request and broadcasts the shed sequence number with
  // the next round schedule, so rank 1 punches the same hole instead
  // of waiting forever at a horizon only rank 0 advanced past.
  Future<Long> fc;
  proxy->counter_nb(9, fc);
  try {
    fc.get();
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.retry_after_ms(), 25u);
  }

  s.release.store(true);
  EXPECT_EQ(fa.get(), -1);
  EXPECT_EQ(fb1.get(), 1);
  EXPECT_EQ(fb2.get(), 2);
  EXPECT_EQ(fb3.get(), 3);

  // Hysteresis: the queue drained below the low watermark, so new work
  // is admitted (and dispatched) again.
  EXPECT_EQ(proxy->counter(6), 6);

  // A scalar reply completes on its first slice, so the slower rank
  // may still be draining here. Wait until every admitted request
  // dispatched on BOTH ranks — the shed hole is symmetric, so neither
  // rank deadlocked behind it: (park + 3 queued + 1 post-drain) × 2.
  ASSERT_TRUE(spin_until([&] { return s.exec.load() == 10; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(s.exec.load(), 10);  // ...and the shed request ran on neither
}

TEST(FlowOverload, LostSpmdSliceTripsAssemblyStallBackstop) {
  // Rank 1 never receives its slice of the invocation: rank 0 (the
  // coordinator) assembles, schedules, and dispatches the request,
  // while rank 1 waits on the scheduled key. The assembly-stall bound
  // must fail rank 1's round with CommFailure instead of wedging the
  // server forever. (Manual fixture: FlowServer's destructor joins the
  // domain, which would rethrow the expected exception there.)
  OrbConfig cfg;
  cfg.poa_assembly_stall = 250ms;
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  InProcessRegistry reg;
  Orb orb(tp, reg, cfg);
  // Request slices go out in rank order, so the second client→server
  // message is rank 1's slice of the first invocation.
  tb.faults().drop_message("", sim::Testbed::kHost2, 1);

  std::atomic<int> exec{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{true};  // never park
  rts::Domain domain("stall-server", 2, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  domain.start([&](rts::DomainContext& sctx) {
    Poa p(orb, sctx);
    ParkServant servant(exec, entered, release, nullptr);
    p.activate_spmd(servant, "stall-calc");
    if (sctx.rank == 0) pp.set_value(&p);
    p.impl_is_ready();
  });
  Poa* poa = pf.get();

  ClientCtx ctx(orb);
  auto proxy = calc_api::calc::_bind(ctx, "stall-calc");
  Future<Long> f;
  proxy->counter_nb(7, f);  // rank 1's slice is dropped in flight
  // Rank 0's slice assembled and dispatched; rank 1 is stalling.
  ASSERT_TRUE(spin_until([&] { return exec.load() >= 1; }));

  poa->deactivate();
  try {
    domain.join();
    FAIL() << "expected the stalled rank to fail its round";
  } catch (const CommFailure& e) {
    EXPECT_NE(std::string(e.what()).find("assemble"), std::string::npos);
  }
}

TEST(FlowFtUnit, OverloadHintFloorsRetryBackoff) {
  transport::LocalTransport tp;
  InProcessRegistry reg;
  Orb orb(tp, reg);
  ClientCtx ctx(orb);
  Binding binding(ctx, ObjectRef{}, /*collective=*/false, /*id=*/1);
  ft::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = 1ms;

  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  const int attempts =
      ft::with_retry(binding, "op", policy, [&](int) -> std::shared_ptr<PendingReply> {
        if (++calls == 1) throw OverloadError("server busy", 40);
        return nullptr;
      });
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(calls, 2);
  // The 40 ms server hint floors the 1 ms configured backoff.
  EXPECT_GE(waited, 40ms);
}

// ---------------------------------------------------------------------------
// Client-side in-flight windows.
// ---------------------------------------------------------------------------

TEST(FlowWindow, FailPolicyThrowsWhenWindowFull) {
  OrbConfig cfg;
  cfg.inflight_window = 1;
  cfg.window_policy = OrbConfig::WindowPolicy::kFail;
  FlowServer s("window-fail-calc", cfg, /*polling=*/false);

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "window-fail-calc");
  Future<Long> fa;
  proxy->counter_nb(-1, fa);  // holds the only window slot
  ASSERT_TRUE(spin_until([&] { return s.entered.load(); }));

  Future<Long> fb;
  EXPECT_THROW(proxy->counter_nb(5, fb), OverloadError);

  s.release.store(true);
  EXPECT_EQ(fa.get(), -1);  // completion returns the slot...
  EXPECT_EQ(proxy->counter(5), 5);  // ...so the next invocation is admitted
  EXPECT_EQ(s.exec.load(), 2);
}

TEST(FlowWindow, BlockPolicyCompletesSequentialInvocations) {
  OrbConfig cfg;
  cfg.inflight_window = 1;
  cfg.window_policy = OrbConfig::WindowPolicy::kBlock;
  FlowServer s("window-block-calc", cfg, /*polling=*/false);
  s.release.store(true);  // never park

  ClientCtx ctx(s.orb);
  auto proxy = calc_api::calc::_bind(ctx, "window-block-calc");
  // Each invocation past the first blocks in the window until the
  // previous reply lands — progress, not failure, under backpressure.
  Future<Long> f[5];
  for (Long i = 0; i < 5; ++i) proxy->counter_nb(i, f[i]);
  for (Long i = 0; i < 5; ++i) EXPECT_EQ(f[i].get(), i);
  EXPECT_EQ(s.exec.load(), 5);
}

// ---------------------------------------------------------------------------
// Bounded endpoint queues.
// ---------------------------------------------------------------------------

TEST(FlowEndpoint, BoundedQueueDropsAtCapacityWithCount) {
  transport::LocalTransport tp;
  auto ep = tp.create_endpoint("");
  ep->set_capacity(2);

  for (int i = 0; i < 3; ++i)
    tp.rsr(ep->addr(), transport::kHandlerOrbRequest, text_payload("m"), "");

  // The third delivery found the queue at capacity and was dropped —
  // the one-way RSR model, now with a located diagnostic and a count.
  EXPECT_EQ(ep->pending(), 2u);
  EXPECT_EQ(ep->dropped(), 1u);
  EXPECT_TRUE(ep->poll().has_value());
  EXPECT_TRUE(ep->poll().has_value());
  EXPECT_FALSE(ep->poll().has_value());
}

TEST(FlowEndpoint, SessionFrameAtCapacityIsDroppedBeforeItsAck) {
  transport::LocalTransport inner;
  flow::SessionTransport::Options opts;
  opts.enabled = true;
  flow::SessionTransport st(inner, opts);
  auto ep = st.create_endpoint("");
  ep->set_capacity(1);

  // The first frame takes the only queue seat: reserved before the
  // demux filter acks it, delivered unwrapped.
  st.rsr(ep->addr(), transport::kHandlerOrbRequest, text_payload("kept"), "");
  EXPECT_EQ(ep->pending(), 1u);
  EXPECT_EQ(st.unacked(ep->addr()), 0u);

  // The second frame finds the queue full. It must be dropped BEFORE
  // the filter runs — acked-then-dropped would prune it from the
  // sender's window and make the loss unrecoverable; unacked, it stays
  // buffered for replay on the next reconnect.
  st.rsr(ep->addr(), transport::kHandlerOrbRequest, text_payload("lost"), "");
  EXPECT_EQ(ep->dropped(), 1u);
  EXPECT_EQ(st.unacked(ep->addr()), 1u);
  EXPECT_EQ(ep->pending(), 1u);

  auto msg = ep->poll();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, text_payload("kept"));
}

TEST(FlowEndpoint, PinnedAtCapacityTripsCheckViolation) {
  struct CheckGuard {
    bool prev = check::enabled();
    CheckGuard() { check::set_enabled(true); }
    ~CheckGuard() { check::set_enabled(prev); }
  } guard;

  transport::LocalTransport tp;
  auto ep = tp.create_endpoint("");
  ep->set_capacity(1);

  // Every drain observes the queue at capacity; after kQueuePinnedRounds
  // consecutive observations the check rule flags the consumer as
  // too slow for its bound.
  EXPECT_THROW(
      {
        for (int i = 0; i < transport::kQueuePinnedRounds + 5; ++i) {
          tp.rsr(ep->addr(), transport::kHandlerOrbRequest, text_payload("x"), "");
          ep->poll();
        }
      },
      check::Violation);
}

}  // namespace
}  // namespace pardis::core
