// Virtual clocks, host/link models, paper testbed presets.
#include <gtest/gtest.h>

#include <thread>

#include "sim/clock.hpp"
#include "sim/testbed.hpp"

namespace pardis::sim {
namespace {

TEST(SimClock, AdvanceAndMergeMonotone) {
  SimClock c;
  EXPECT_EQ(c.now(), 0.0);
  c.advance(1.5);
  c.advance(-3.0);  // negative charges are ignored
  EXPECT_EQ(c.now(), 1.5);
  c.merge(1.0);  // merge never rewinds
  EXPECT_EQ(c.now(), 1.5);
  c.merge(2.0);
  EXPECT_EQ(c.now(), 2.0);
}

TEST(ClockBindingTest, ChargeAffectsOnlyBoundThread) {
  SimClock c;
  EXPECT_EQ(current_clock(), nullptr);
  charge_seconds(5.0);  // unbound: no-op
  {
    ClockBinding bind(c);
    EXPECT_EQ(current_clock(), &c);
    charge_seconds(2.0);
    merge_time(1.0);
    EXPECT_EQ(timestamp_now(), 2.0);
  }
  EXPECT_EQ(current_clock(), nullptr);
  EXPECT_EQ(c.now(), 2.0);
}

TEST(ClockBindingTest, NestedBindingRestoresPrevious) {
  SimClock outer, inner;
  ClockBinding a(outer);
  {
    ClockBinding b(inner);
    charge_seconds(1.0);
  }
  charge_seconds(0.25);
  EXPECT_EQ(inner.now(), 1.0);
  EXPECT_EQ(outer.now(), 0.25);
}

TEST(ClockBindingTest, BindingIsThreadLocal) {
  SimClock main_clock;
  ClockBinding bind(main_clock);
  std::thread other([] {
    EXPECT_EQ(current_clock(), nullptr);
    charge_seconds(9.0);  // must not touch the main thread's clock
  });
  other.join();
  EXPECT_EQ(main_clock.now(), 0.0);
}

TEST(HostModelTest, ChargeFlopsUsesGflops) {
  SimClock c;
  ClockBinding bind(c);
  HostModel host{.name = "H", .gflops = 2.0};
  host.charge_flops(4e9);  // 4 GFLOP at 2 GFLOP/s = 2 s
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(LinkModelTest, DelayIsLatencyPlusBytesOverBandwidth) {
  LinkModel link{.latency_s = 0.001, .bandwidth_bps = 1e6};
  EXPECT_DOUBLE_EQ(link.delay(0), 0.001);
  EXPECT_DOUBLE_EQ(link.delay(500000), 0.501);
}

TEST(TestbedTest, PaperTestbedTopology) {
  Testbed tb = Testbed::paper_testbed();
  const HostModel* h1 = tb.host(Testbed::kHost1);
  const HostModel* h2 = tb.host(Testbed::kHost2);
  const HostModel* sp2 = tb.host(Testbed::kSp2);
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h2, nullptr);
  ASSERT_NE(sp2, nullptr);
  // HOST2 (R8000) is the faster resource in the paper's Fig. 2 setup.
  EXPECT_GT(h2->gflops, h1->gflops);
  EXPECT_EQ(h1->max_threads, 4);
  EXPECT_EQ(h2->max_threads, 10);
  EXPECT_EQ(sp2->max_threads, 8);

  // Dedicated ATM between HOST1 and HOST2, Ethernet elsewhere.
  const LinkModel& atm = tb.link(Testbed::kHost1, Testbed::kHost2);
  const LinkModel& eth = tb.link(Testbed::kHost2, Testbed::kSp2);
  EXPECT_GT(atm.bandwidth_bps, eth.bandwidth_bps);
  EXPECT_LT(atm.latency_s, eth.latency_s);

  // Same-host link is loopback (cheaper than any network link).
  const LinkModel& loop = tb.link(Testbed::kHost1, Testbed::kHost1);
  EXPECT_LT(loop.latency_s, atm.latency_s);
}

TEST(TestbedTest, LinkLookupIsSymmetric) {
  Testbed tb = Testbed::paper_testbed();
  EXPECT_EQ(tb.link(Testbed::kHost1, Testbed::kHost2).bandwidth_bps,
            tb.link(Testbed::kHost2, Testbed::kHost1).bandwidth_bps);
}

TEST(TestbedTest, UnknownHostReturnsNull) {
  Testbed tb = Testbed::paper_testbed();
  EXPECT_EQ(tb.host("NOSUCH"), nullptr);
}

}  // namespace
}  // namespace pardis::sim
