// pardis_wal tests: the log itself (framing, group commit, reads by
// LSN), the durable-object glue (replay-window pruning, golden bytes
// with the WAL off), and exactly-once non-idempotent failover — a
// replica killed mid-stream of prefix-sum mutations must lose and
// duplicate nothing, single-client and SPMD-coordinated.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/durable.hpp"
#include "core/wire.hpp"
#include "ft/ft.hpp"
#include "pool/pool.hpp"
#include "tests/support/calc_api.hpp"
#include "wal/wal.hpp"

namespace pardis::wal {
namespace {

using calc_api::POA_calc;

/// Turns the WAL on against a fresh scratch directory for one test and
/// restores "off" (the suite default) on exit.
struct WalGuard {
  explicit WalGuard(const std::string& scratch)
      : dir(std::filesystem::temp_directory_path() / scratch) {
    std::filesystem::remove_all(dir);
    set_dir(dir.string());
    set_enabled(true);
  }
  ~WalGuard() {
    set_enabled(false);
    std::filesystem::remove_all(dir);
  }
  std::filesystem::path dir;
};

struct PoolEnabledGuard {
  PoolEnabledGuard() { pool::set_enabled(true); }
  ~PoolEnabledGuard() { pool::set_enabled(false); }
};

ByteBuffer bytes_of(const std::string& s) {
  ByteBuffer b;
  b.append_raw(s.data(), s.size());
  return b;
}

std::string string_of(const ByteBuffer& b) {
  return std::string(reinterpret_cast<const char*>(b.view().data()), b.size());
}

// ---------------------------------------------------------------------------
// The log: framing, LSNs, group commit.
// ---------------------------------------------------------------------------

TEST(WalLogTest, AppendCommitReadRoundTrips) {
  WalGuard wal("pardis-wal-roundtrip");
  Log log((wal.dir / "t.wal").string());

  const Lsn a = log.append(kRecordMutation, bytes_of("alpha"));
  const Lsn b = log.append(kRecordMutation, bytes_of("beta"));
  const Lsn c = log.append(kRecordSnapshot, bytes_of("gamma"));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);

  log.commit(c);  // commit of the highest LSN covers the batch
  EXPECT_GE(log.durable_lsn(), c);

  auto rec = log.read(b);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->lsn, b);
  EXPECT_EQ(rec->type, kRecordMutation);
  EXPECT_EQ(string_of(rec->payload), "beta");
  auto snap = log.read(c);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->type, kRecordSnapshot);
}

TEST(WalLogTest, ReopenRecoversEveryCommittedRecord) {
  WalGuard wal("pardis-wal-reopen");
  const std::string path = (wal.dir / "t.wal").string();
  {
    Log log(path);
    for (int i = 0; i < 5; ++i)
      log.commit(log.append(kRecordMutation, bytes_of("r" + std::to_string(i))));
  }
  Log reopened(path);
  auto recovered = reopened.take_recovered();
  ASSERT_EQ(recovered.size(), 5u);
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].lsn, i + 1);
    EXPECT_EQ(string_of(recovered[i].payload), "r" + std::to_string(i));
  }
  EXPECT_EQ(reopened.first_dropped_lsn(), 0u);  // clean tail
  // Fresh appends continue the LSN sequence past the recovered ones.
  EXPECT_EQ(reopened.append(kRecordMutation, bytes_of("next")), 6u);
}

TEST(WalLogTest, ConcurrentCommittersShareFsyncBatches) {
  WalGuard wal("pardis-wal-group");
  Log log((wal.dir / "t.wal").string());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Lsn l = log.append(kRecordMutation,
                                 bytes_of(std::to_string(t) + ":" + std::to_string(i)));
        log.commit(l);
        // commit's return is the durability ack: the record must be on
        // disk NOW, not riding a later batch while durable_lsn_ already
        // covers it (the lost-ack interleave of out-of-order appends).
        EXPECT_TRUE(log.read(l).has_value());
      }
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(log.last_lsn(), static_cast<Lsn>(kThreads * kPerThread));
  EXPECT_EQ(log.durable_lsn(), log.last_lsn());
  // Every record is individually readable after the dust settles.
  for (Lsn l = 1; l <= log.last_lsn(); ++l) EXPECT_TRUE(log.read(l).has_value());
}

// ---------------------------------------------------------------------------
// Durable glue: pruning, paths, golden bytes with the WAL off.
// ---------------------------------------------------------------------------

TEST(WalDurableTest, PruneDropsEntriesBehindTheReplayWindow) {
  WalGuard wal("pardis-wal-prune");
  core::durable::set_replay_window(4);
  core::durable::DurableObj dur;
  dur.log = std::make_unique<Log>((wal.dir / "t.wal").string());
  const ULongLong binding = 7;
  for (ULong seq = 0; seq < 10; ++seq)
    dur.committed[{binding, seq}] = dur.log->append(kRecordMutation, bytes_of("x"));
  dur.binding_next[binding] = 10;

  const std::size_t pruned = core::durable::prune(dur);
  EXPECT_EQ(pruned, 6u);  // seqs 0..5 are more than 4 behind horizon 10
  EXPECT_EQ(dur.committed.size(), 4u);
  EXPECT_EQ(dur.committed.begin()->first.second, 6u);
  core::durable::set_replay_window(0);  // back to the environment default
}

TEST(WalDurableTest, WalPathSanitizesNameAndHost) {
  WalGuard wal("pardis-wal-path");
  const std::string p = core::durable::wal_path("a/b c", "Host*1", 2);
  EXPECT_EQ(p, wal.dir.string() + "/a_b_c@Host_1.r2.wal");
}

TEST(WalDurableTest, DurableMarkerRoundTripsAndStaysOffTheWireWhenDisabled) {
  core::ObjectRef ref;
  ref.type_id = calc_api::kCalcTypeId;
  ref.name = "g";
  ref.object_id = ObjectId::next();
  transport::EndpointAddr ep;
  ep.kind = transport::AddrKind::kLocal;
  ep.local_id = 99;
  ref.thread_eps.push_back(ep);

  ByteBuffer plain;
  {
    CdrWriter w(plain);
    ref.marshal(w);
  }
  core::ObjectRef marked = ref;
  marked.set_durable();
  ByteBuffer with_marker;
  {
    CdrWriter w(with_marker);
    marked.marshal(w);
  }
  EXPECT_FALSE(ref.durable());
  EXPECT_TRUE(marked.durable());
  // The marker travels inside arg_specs: an unmarked ref keeps the
  // pre-WAL byte layout, and the marker survives a wire round trip.
  EXPECT_NE(plain.size(), with_marker.size());
  CdrReader marked_r(with_marker.view());
  EXPECT_TRUE(core::ObjectRef::unmarshal(marked_r).durable());
  CdrReader plain_r(plain.view());
  EXPECT_FALSE(core::ObjectRef::unmarshal(plain_r).durable());
}

// ---------------------------------------------------------------------------
// Exactly-once failover of non-idempotent mutations.
// ---------------------------------------------------------------------------

/// Accumulating counter: `counter(d)` is a non-idempotent mutation
/// whose reply is the running prefix sum — a lost or duplicated
/// mutation shifts every later reply, so exact replies prove
/// exactly-once end to end.
class DurableCounterServant : public POA_calc {
 public:
  bool _durable() const override { return true; }
  void _snapshot_state(CdrWriter& w) const override { w.write_long(total_); }
  void _restore_state(CdrReader& r) override { total_ = r.read_long(); }

  double dot(const calc_api::vec&, const calc_api::vec&) override { return 0; }
  void scale(double, const calc_api::vec&, calc_api::vec&) override {}
  Long counter(Long d) override { return total_ += d; }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

  Long total() const noexcept { return total_; }

 private:
  Long total_ = 0;
};

/// One durable replica: a width-thread server domain joining the
/// replica group for `name`, one DurableCounterServant per rank.
class DurableReplicaServer {
 public:
  DurableReplicaServer(core::Orb& orb, const std::string& name, const std::string& label,
                       int width, const sim::HostModel* host = nullptr)
      : domain_(label, width, host) {
    std::promise<core::Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([this, &orb, name, &pp](rts::DomainContext& sctx) {
      core::Poa poa(orb, sctx);
      DurableCounterServant servant;
      poa.activate_spmd(servant, name, {}, /*replica=*/true);
      if (sctx.rank == 0) pp.set_value(&poa);
      poa.impl_is_ready();
      totals_[static_cast<std::size_t>(sctx.rank)] = servant.total();
    });
    poa_ = pf.get();
  }

  ~DurableReplicaServer() { stop(); }

  void stop() {
    if (poa_ == nullptr) return;
    poa_->deactivate();
    domain_.join();
    poa_ = nullptr;
  }

  /// Final per-rank servant total (valid after stop()).
  Long total(int rank) const { return totals_[static_cast<std::size_t>(rank)]; }

 private:
  std::array<Long, 8> totals_{};
  rts::Domain domain_;
  core::Poa* poa_ = nullptr;
};

Long retried_counter(const std::shared_ptr<pool::GroupBinding>& gb, Long value,
                     const ft::RetryPolicy& policy) {
  core::ClientRequest req(*gb->binding(), "counter", false, false);
  req.in_value<Long>(value);
  auto out = std::make_shared<Long>(-1);
  ft::with_retry(*gb->binding(), "counter", policy, [&](int attempt) {
    auto pending = req.invoke(attempt);
    pending->set_decoder([out](core::ReplyDecoder& d) { *out = d.out_value<Long>(); });
    return pending;
  });
  return *out;
}

ft::RetryPolicy fast_policy() {
  ft::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = std::chrono::milliseconds(1);
  return policy;
}

pool::PoolConfig pool_cfg() {
  pool::PoolConfig cfg;
  cfg.policy = pool::Policy::kOverloadAware;
  cfg.probation = std::chrono::milliseconds(25);
  cfg.overload_quarantine = std::chrono::milliseconds(25);
  return cfg;
}

TEST(WalFailoverTest, ExactlyOnceSingleClientAcrossKill) {
  WalGuard wal("pardis-wal-ha1");
  PoolEnabledGuard pool_on;
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  DurableReplicaServer a(orb, "wal-ha", "wal-ha-r0", 1, tb.host(sim::Testbed::kHost2));
  DurableReplicaServer b(orb, "wal-ha", "wal-ha-r1", 1, tb.host(sim::Testbed::kSp2));

  core::ClientCtx ctx(orb);
  auto gb = pool::GroupBinding::bind(ctx, "wal-ha", "", calc_api::kCalcTypeId, pool_cfg());
  ASSERT_EQ(gb->balancer().size(), 2u);
  ASSERT_TRUE(gb->binding()->exactly_once());
  const ft::RetryPolicy policy = fast_policy();

  constexpr int kRequests = 8;
  constexpr int kKillBefore = 5;
  Long expect = 0;
  for (int i = 1; i <= kRequests; ++i) {
    if (i == kKillBefore)
      for (const auto& ep : gb->current().thread_eps)
        tb.faults().kill_endpoint(ep.local_id);
    expect += i;
    // Exact prefix sums: a lost mutation (acked on the dead primary
    // only) or a duplicate (re-executed on the sibling after a
    // committed-and-forwarded original) would shift this reply.
    EXPECT_EQ(retried_counter(gb, i, policy), expect);
  }
  EXPECT_EQ(gb->failovers(), 1u);

  a.stop();
  b.stop();
  // The surviving replica holds the full sum: every pre-kill mutation
  // reached it through the append stream, every post-kill one directly.
  EXPECT_TRUE(a.total(0) == expect || b.total(0) == expect);
}

TEST(WalFailoverTest, ExactlyOnceSpmdAcrossKill) {
  WalGuard wal("pardis-wal-ha2");
  PoolEnabledGuard pool_on;
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);

  constexpr int kP = 2;          // client threads
  constexpr int kQ = 2;          // server threads per replica
  constexpr int kRequests = 6;   // collective mutations
  constexpr int kKillAfter = 3;  // kill the pinned replica before this one

  DurableReplicaServer a(orb, "wal-spmd", "wal-spmd-r0", kQ,
                         tb.host(sim::Testbed::kHost2));
  DurableReplicaServer b(orb, "wal-spmd", "wal-spmd-r1", kQ,
                         tb.host(sim::Testbed::kSp2));

  std::array<std::string, kP> final_target;
  std::atomic<int> killed_replica{-1};  // 0 = a, 1 = b

  rts::Domain client("wal-spmd-client", kP, tb.host(sim::Testbed::kHost1));
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb, dctx);
    auto gb = pool::GroupBinding::spmd_bind(ctx, "wal-spmd", "", calc_api::kCalcTypeId,
                                            pool_cfg());
    ASSERT_FALSE(gb->degraded());
    ASSERT_TRUE(gb->binding()->exactly_once());
    const ft::RetryPolicy policy = fast_policy();

    Long expect = 0;
    for (int i = 1; i <= kRequests; ++i) {
      if (i - 1 == kKillAfter) {
        rts::barrier(dctx.comm);
        if (dctx.rank == 0) {
          killed_replica.store(gb->current().host == sim::Testbed::kHost2 ? 0 : 1);
          for (const auto& ep : gb->current().thread_eps)
            tb.faults().kill_endpoint(ep.local_id);
        }
        rts::barrier(dctx.comm);
      }
      expect += i;
      EXPECT_EQ(retried_counter(gb, i, policy), expect);  // exact prefix sums
    }
    final_target[static_cast<std::size_t>(dctx.rank)] = gb->current().primary_key();
  });

  EXPECT_EQ(final_target[0], final_target[1]);  // ranks agree on the target

  a.stop();
  b.stop();
  // Every rank of the surviving replica applied every mutation exactly
  // once — the pre-kill ones arrived as rank-to-rank appends.
  Long expect = 0;
  for (int i = 1; i <= kRequests; ++i) expect += i;
  const DurableReplicaServer& alive = killed_replica.load() == 0 ? b : a;
  for (int q = 0; q < kQ; ++q) EXPECT_EQ(alive.total(q), expect);
}

TEST(WalFailoverTest, WalOffKeepsWireAndDiskUntouched) {
  // No WalGuard: the WAL stays off (the suite default). A durable
  // servant then behaves exactly like any other — no marker on the
  // wire, no directory on disk.
  const std::filesystem::path probe =
      std::filesystem::temp_directory_path() / "pardis-wal-off-probe";
  std::filesystem::remove_all(probe);
  set_dir(probe.string());

  transport::LocalTransport tp;
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  DurableReplicaServer a(orb, "wal-off", "wal-off-r0", 1);

  core::ClientCtx ctx(orb);
  auto binding = core::bind(ctx, "wal-off", "", calc_api::kCalcTypeId);
  EXPECT_FALSE(binding->ref().durable());
  EXPECT_TRUE(binding->ref().arg_specs.empty());
  EXPECT_FALSE(binding->exactly_once());

  core::ClientRequest req(*binding, "counter", false, false);
  req.in_value<Long>(5);
  Long out = -1;
  auto pending = req.invoke();
  pending->set_decoder([&](core::ReplyDecoder& d) { out = d.out_value<Long>(); });
  pending->wait();
  EXPECT_EQ(out, 5);

  a.stop();
  EXPECT_EQ(a.total(0), 5);
  EXPECT_FALSE(std::filesystem::exists(probe));  // nothing ever touched disk
}

}  // namespace
}  // namespace pardis::wal
