// Repositories and activation: naming domains, the transport-reachable
// repository server, the implementation repository and activation agent.
#include <gtest/gtest.h>

#include <atomic>

#include "repo/impl_repository.hpp"
#include "repo/repository.hpp"
#include "tests/support/calc_api.hpp"

namespace pardis::repo {
namespace {

core::ObjectRef make_ref(const std::string& name, const std::string& host) {
  core::ObjectRef ref;
  ref.type_id = "IDL:test:1.0";
  ref.name = name;
  ref.host = host;
  ref.object_id = ObjectId::next();
  transport::EndpointAddr ep;
  ep.kind = transport::AddrKind::kLocal;
  ep.local_id = 1;
  ref.thread_eps = {ep};
  return ref;
}

TEST(InProcessRegistryTest, RegisterLookupUnregister) {
  core::InProcessRegistry reg;
  reg.register_object(make_ref("solver", "HOST1"));
  reg.register_object(make_ref("solver", "HOST2"));

  // Host narrows the search; empty host matches any.
  auto h1 = reg.lookup("solver", "HOST1");
  ASSERT_TRUE(h1.has_value());
  EXPECT_EQ(h1->host, "HOST1");
  EXPECT_TRUE(reg.lookup("solver", "").has_value());
  EXPECT_FALSE(reg.lookup("solver", "HOST3").has_value());
  EXPECT_FALSE(reg.lookup("nosuch", "").has_value());

  reg.unregister("solver", "HOST1");
  EXPECT_FALSE(reg.lookup("solver", "HOST1").has_value());
  EXPECT_TRUE(reg.lookup("solver", "HOST2").has_value());
  reg.unregister("solver", "");  // wipes remaining hosts
  EXPECT_FALSE(reg.lookup("solver", "").has_value());
}

TEST(InProcessRegistryTest, ReRegistrationReplaces) {
  core::InProcessRegistry reg;
  core::ObjectRef a = make_ref("x", "");
  reg.register_object(a);
  core::ObjectRef b = make_ref("x", "");
  reg.register_object(b);
  EXPECT_EQ(reg.lookup("x", "")->object_id, b.object_id);
  EXPECT_EQ(reg.list().size(), 1u);
}

TEST(InProcessRegistryTest, ReplicaGroupRegistrationTracksEpoch) {
  core::InProcessRegistry reg;
  core::ObjectRef a = make_ref("grp", "HOST1");
  core::ObjectRef b = make_ref("grp", "HOST2");
  EXPECT_EQ(reg.register_replica(a), 1u);
  EXPECT_EQ(reg.register_replica(b), 2u);

  auto group = reg.lookup_group("grp", "");
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->epoch, 2u);
  ASSERT_EQ(group->members.size(), 2u);

  reg.unregister_replica("grp", a.object_id);
  group = reg.lookup_group("grp", "");
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->epoch, 3u);
  ASSERT_EQ(group->members.size(), 1u);
  EXPECT_EQ(group->members[0], b);

  reg.unregister_replica("grp", b.object_id);
  EXPECT_FALSE(reg.lookup_group("grp", "").has_value());
  EXPECT_FALSE(reg.lookup("grp", "").has_value());
}

// Regression: concurrent register of the same name used to be
// last-writer-wins in the single-object table — a re-registration
// dropped every sibling replica. Under a live group it joins instead:
// the same-host predecessor is replaced (a restarted server), the
// epoch is bumped, and the other members survive.
TEST(InProcessRegistryTest, ReRegistrationUnderLiveGroupJoinsInsteadOfClobbering) {
  core::InProcessRegistry reg;
  core::ObjectRef a = make_ref("grp", "HOST1");
  core::ObjectRef b = make_ref("grp", "HOST2");
  reg.register_replica(a);
  reg.register_replica(b);

  core::ObjectRef a2 = make_ref("grp", "HOST1");  // restarted server, fresh id
  reg.register_object(a2);

  auto group = reg.lookup_group("grp", "");
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->epoch, 3u);
  ASSERT_EQ(group->members.size(), 2u);
  EXPECT_EQ(group->members[0].object_id, a2.object_id);
  EXPECT_EQ(group->members[1], b);
  // Plain lookup resolves to the freshest HOST1 registration too.
  EXPECT_EQ(reg.lookup("grp", "HOST1")->object_id, a2.object_id);
}

TEST(InProcessRegistryTest, EarlierSinglesSeedTheGroupOnFirstReplica) {
  core::InProcessRegistry reg;
  core::ObjectRef solo = make_ref("mix", "HOST1");
  reg.register_object(solo);
  core::ObjectRef rep = make_ref("mix", "HOST2");
  EXPECT_EQ(reg.register_replica(rep), 1u);
  auto group = reg.lookup_group("mix", "");
  ASSERT_TRUE(group.has_value());
  ASSERT_EQ(group->members.size(), 2u);
  EXPECT_EQ(group->members[0], solo);
  EXPECT_EQ(group->members[1], rep);
}

TEST(InProcessRegistryTest, InvalidRegistrationsThrow) {
  core::InProcessRegistry reg;
  EXPECT_THROW(reg.register_object(core::ObjectRef{}), BadParam);
  core::ObjectRef unnamed = make_ref("", "");
  EXPECT_THROW(reg.register_object(unnamed), BadParam);
}

TEST(RepositoryServerTest, RemoteRegistryFullProtocol) {
  transport::LocalTransport tp;
  RepositoryServer server(tp, std::make_shared<core::InProcessRegistry>());
  RemoteRegistry remote(tp, server.addr());

  core::ObjectRef ref = make_ref("remote-obj", "HOST2");
  ref.arg_specs["solve"] = {core::DistSpec::concentrated(1)};
  remote.register_object(ref);

  auto found = remote.lookup("remote-obj", "HOST2");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, ref);  // full reference round-trips, specs included
  EXPECT_FALSE(remote.lookup("remote-obj", "HOST9").has_value());

  auto names = remote.list();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "remote-obj@HOST2");

  remote.unregister("remote-obj", "HOST2");
  EXPECT_FALSE(remote.lookup("remote-obj", "").has_value());
}

TEST(RepositoryServerTest, RemoteGroupProtocolRoundTrips) {
  transport::LocalTransport tp;
  RepositoryServer server(tp, std::make_shared<core::InProcessRegistry>());
  RemoteRegistry remote(tp, server.addr());

  core::ObjectRef a = make_ref("pool-obj", "HOST1");
  core::ObjectRef b = make_ref("pool-obj", "HOST2");
  EXPECT_EQ(remote.register_replica(a), 1u);
  EXPECT_EQ(remote.register_replica(b), 2u);

  auto group = remote.lookup_group("pool-obj", "");
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->epoch, 2u);
  ASSERT_EQ(group->members.size(), 2u);
  EXPECT_EQ(group->members[0], a);  // full references round-trip
  EXPECT_EQ(group->members[1], b);

  // Host narrows the group view; plain lookup still resolves a member
  // so non-pool clients keep working against a replicated name.
  auto h2 = remote.lookup_group("pool-obj", "HOST2");
  ASSERT_TRUE(h2.has_value());
  ASSERT_EQ(h2->members.size(), 1u);
  EXPECT_EQ(h2->members[0].host, "HOST2");
  EXPECT_TRUE(remote.lookup("pool-obj", "").has_value());

  remote.unregister_replica("pool-obj", a.object_id);
  auto rest = remote.lookup_group("pool-obj", "");
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(rest->epoch, 3u);
  ASSERT_EQ(rest->members.size(), 1u);
  EXPECT_EQ(rest->members[0], b);

  remote.unregister_replica("pool-obj", b.object_id);
  EXPECT_FALSE(remote.lookup_group("pool-obj", "").has_value());
  EXPECT_FALSE(remote.lookup("pool-obj", "").has_value());
}

TEST(RepositoryServerTest, CallAgainstDeadRepositoryTimesOutWithElapsed) {
  transport::LocalTransport tp;
  // An endpoint nobody serves: the request lands in its queue and no
  // reply ever comes back — the client must not wait forever.
  auto dead = tp.create_endpoint("");
  RemoteRegistry remote(tp, dead->addr(), std::chrono::milliseconds(50));
  const auto start = std::chrono::steady_clock::now();
  try {
    remote.lookup("ghost", "");
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lookup"), std::string::npos);
    EXPECT_NE(what.find("ms"), std::string::npos);  // elapsed time in the message
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(50));
  EXPECT_LT(elapsed, std::chrono::seconds(2));  // bounded, not the old infinite wait
}

TEST(RepositoryServerTest, SharedBackingVisibleInProcess) {
  transport::LocalTransport tp;
  auto backing = std::make_shared<core::InProcessRegistry>();
  RepositoryServer server(tp, backing);
  RemoteRegistry remote(tp, server.addr());
  // Registered through the wire, visible through the in-process view.
  remote.register_object(make_ref("shared", ""));
  EXPECT_TRUE(backing->lookup("shared", "").has_value());
}

TEST(RepositoryServerTest, TwoServersSplitTheNamespace) {
  // Paper: "configuring clients and servers to work with different
  // repositories allows the programmer to split the namespace".
  transport::LocalTransport tp;
  RepositoryServer ns_a(tp, std::make_shared<core::InProcessRegistry>());
  RepositoryServer ns_b(tp, std::make_shared<core::InProcessRegistry>());
  RemoteRegistry a(tp, ns_a.addr());
  RemoteRegistry b(tp, ns_b.addr());
  a.register_object(make_ref("obj", ""));
  EXPECT_TRUE(a.lookup("obj", "").has_value());
  EXPECT_FALSE(b.lookup("obj", "").has_value());
}

TEST(RepositoryServerTest, WorksOverTcp) {
  transport::TcpTransport server_tp(0);
  transport::TcpTransport client_tp(0);
  RepositoryServer server(server_tp, std::make_shared<core::InProcessRegistry>());
  RemoteRegistry remote(client_tp, server.addr());
  remote.register_object(make_ref("tcp-obj", "SP2"));
  auto found = remote.lookup("tcp-obj", "");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->host, "SP2");
}

TEST(ImplRepositoryTest, FindRespectsHostRestriction) {
  ImplRepository impls;
  impls.register_impl("svc", ActivationRecord{[] { return nullptr; }, "HOST1"});
  EXPECT_NE(impls.find("svc", "HOST1"), nullptr);
  EXPECT_NE(impls.find("svc", ""), nullptr);  // unconstrained bind matches
  EXPECT_EQ(impls.find("svc", "HOST2"), nullptr);
  EXPECT_EQ(impls.find("other", ""), nullptr);
  impls.unregister_impl("svc");
  EXPECT_EQ(impls.find("svc", "HOST1"), nullptr);
  EXPECT_THROW(impls.register_impl("bad", ActivationRecord{}), BadParam);
}

TEST(ActivationTest, BindTriggersActivationThroughOrb) {
  // Full §2.2 flow: bind on an unregistered name -> activation agent
  // launches the server domain -> the object registers -> bind
  // completes.
  transport::LocalTransport tp;
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);

  struct ServerState {
    std::atomic<core::Poa*> poa{nullptr};
    std::atomic<int> launches{0};
  };
  auto state = std::make_shared<ServerState>();

  ImplRepository impls;
  impls.register_impl(
      "lazy-calc",
      ActivationRecord{[&orb, state]() -> std::unique_ptr<rts::Domain> {
                         state->launches.fetch_add(1);
                         auto domain = std::make_unique<rts::Domain>("lazy", 2);
                         domain->start([&orb, state](rts::DomainContext& ctx) {
                           core::Poa poa(orb, ctx);
                           static std::atomic<Long> counter{0};
                           struct Impl : calc_api::POA_calc {
                             std::atomic<Long>* c;
                             rts::Communicator* comm;
                             double dot(const calc_api::vec&, const calc_api::vec&) override {
                               return 0;
                             }
                             void scale(double, const calc_api::vec&, calc_api::vec&) override {}
                             Long counter(Long d) override {
                               if (comm->rank() != 0) return 0;
                               return c->fetch_add(d) + d;
                             }
                             void note(const std::string&) override {}
                             void boom(const std::string&) override {}
                           } servant;
                           servant.c = &counter;
                           servant.comm = &ctx.comm;
                           poa.activate_spmd(servant, "lazy-calc");
                           if (ctx.rank == 0) state->poa.store(&poa);
                           poa.impl_is_ready();
                         });
                         return domain;
                       },
                       ""});

  ActivationAgent agent(impls);
  agent.attach(orb);

  core::ClientCtx ctx(orb);
  auto proxy = calc_api::calc::_bind(ctx, "lazy-calc", "");
  EXPECT_EQ(proxy->counter(4), 4);
  EXPECT_EQ(agent.launched(), 1u);
  EXPECT_EQ(state->launches.load(), 1);

  // A second bind reuses the running implementation.
  auto proxy2 = calc_api::calc::_bind(ctx, "lazy-calc", "");
  EXPECT_EQ(proxy2->counter(1), 5);
  EXPECT_EQ(state->launches.load(), 1);

  state->poa.load()->deactivate();
  agent.join_all();
}

TEST(ActivationTest, NonActivatingModeFails) {
  transport::LocalTransport tp;
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  ImplRepository impls;
  impls.register_impl("svc", ActivationRecord{[] { return nullptr; }, ""});
  ActivationAgent agent(impls, /*activating=*/false);
  agent.attach(orb);
  core::ClientCtx ctx(orb);
  EXPECT_THROW(calc_api::calc::_bind(ctx, "svc", ""), ObjectNotExist);
}

TEST(ActivationTest, UnknownImplementationFailsFast) {
  transport::LocalTransport tp;
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  ImplRepository impls;
  ActivationAgent agent(impls);
  agent.attach(orb);
  core::ClientCtx ctx(orb);
  // No activation record: resolve should not wait out the full timeout.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(calc_api::calc::_bind(ctx, "ghost", ""), ObjectNotExist);
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(2));
}

}  // namespace
}  // namespace pardis::repo
