// Mini HPC++ PSTL: distributed vector, parallel algorithms, halo
// exchange, gradient, and the PARDIS direct mapping.
#include <gtest/gtest.h>

#include <cmath>

#include "pstl/distributed_vector.hpp"
#include "pstl/mapping.hpp"
#include "rts/domain.hpp"

namespace pardis::pstl {
namespace {

class PstlWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(PstlWidthTest, ApplyTransformReduce) {
  rts::Domain d("pstl", GetParam());
  d.run([](rts::DomainContext& ctx) {
    DistributedVector<double> v(ctx.comm, 120);
    par_apply(v, [](std::size_t g, double& x) { x = static_cast<double>(g); });
    EXPECT_DOUBLE_EQ(par_sum(v), 119.0 * 120.0 / 2.0);

    DistributedVector<double> w(ctx.comm, 120);
    par_transform(v, w, [](double x) { return 2.0 * x; });
    EXPECT_DOUBLE_EQ(par_sum(w), 119.0 * 120.0);

    EXPECT_DOUBLE_EQ(par_reduce(v, 0.0, [](double a, double b) { return a < b ? b : a; }),
                     119.0);
  });
}

TEST_P(PstlWidthTest, DotAndAxpy) {
  rts::Domain d("pstl2", GetParam());
  d.run([](rts::DomainContext& ctx) {
    DistributedVector<double> x(ctx.comm, 64), y(ctx.comm, 64);
    par_apply(x, [](std::size_t g, double& v) { v = static_cast<double>(g); });
    par_apply(y, [](std::size_t, double& v) { v = 1.0; });
    axpy(2.0, x, y);  // y = 1 + 2g
    EXPECT_DOUBLE_EQ(dot(x, y),
                     [] {
                       double s = 0;
                       for (int g = 0; g < 64; ++g) s += g * (1.0 + 2.0 * g);
                       return s;
                     }());
  });
}

TEST_P(PstlWidthTest, HaloExchangeNeighbours) {
  rts::Domain d("halo", GetParam());
  d.run([](rts::DomainContext& ctx) {
    DistributedVector<double> v(ctx.comm, 40);
    par_apply(v, [](std::size_t g, double& x) { x = static_cast<double>(g); });
    auto [left, right] = exchange_halo(v, 3);
    const auto iv = v.distribution().intervals(ctx.rank);
    if (iv.empty()) return;
    if (iv.front().begin > 0) {
      ASSERT_FALSE(left.empty());
      EXPECT_DOUBLE_EQ(left.back(), static_cast<double>(iv.front().begin - 1));
    } else {
      EXPECT_TRUE(left.empty());
    }
    if (iv.back().end < 40) {
      ASSERT_FALSE(right.empty());
      EXPECT_DOUBLE_EQ(right.front(), static_cast<double>(iv.back().end));
    } else {
      EXPECT_TRUE(right.empty());
    }
  });
}

TEST_P(PstlWidthTest, GradientMatchesSerialReference) {
  static constexpr std::size_t kDim = 24;
  // Serial reference on one rank vs distributed on P ranks.
  std::vector<double> reference(kDim * kDim);
  {
    rts::Domain solo("serial", 1);
    solo.run([&](rts::DomainContext& ctx) {
      DistributedVector<double> u(ctx.comm, kDim * kDim), g(ctx.comm, kDim * kDim);
      par_apply(u, [](std::size_t gi, double& x) {
        const double r = static_cast<double>(gi / kDim), c = static_cast<double>(gi % kDim);
        x = r * r + 3.0 * c;
      });
      gradient_magnitude(u, g, kDim);
      std::copy(g.local().begin(), g.local().end(), reference.begin());
    });
  }
  rts::Domain d("grad", GetParam());
  d.run([&](rts::DomainContext& ctx) {
    DistributedVector<double> u(ctx.comm, kDim * kDim), g(ctx.comm, kDim * kDim);
    par_apply(u, [](std::size_t gi, double& x) {
      const double r = static_cast<double>(gi / kDim), c = static_cast<double>(gi % kDim);
      x = r * r + 3.0 * c;
    });
    gradient_magnitude(u, g, kDim);
    for (std::size_t li = 0; li < g.local_size(); ++li)
      EXPECT_DOUBLE_EQ(g.local()[li], reference[g.local_to_global(li)]);
  });
}

INSTANTIATE_TEST_SUITE_P(Widths, PstlWidthTest, ::testing::Values(1, 2, 3, 5));

TEST(PstlTest, MismatchedDistributionsThrow) {
  rts::Domain d("bad", 2);
  EXPECT_THROW(d.run([](rts::DomainContext& ctx) {
    DistributedVector<double> a(ctx.comm, 10);
    DistributedVector<double> b(ctx.comm, dist::Distribution::concentrated(10, 2, 0));
    dot(a, b);
  }),
               BadParam);
}

TEST(PstlMapping, DseqViewAliasesStorageBothWays) {
  rts::Domain d("map", 2);
  d.run([](rts::DomainContext& ctx) {
    DistributedVector<double> v(ctx.comm, 10);
    par_apply(v, [](std::size_t g, double& x) { x = static_cast<double>(g); });
    auto view = dseq_view(v);
    EXPECT_EQ(view.size(), 10u);
    EXPECT_EQ(view.distribution(), v.distribution());
    EXPECT_EQ(view.local().data(), v.storage().data());  // no copy
    // Writing through the view writes the native container.
    if (view.local_size() > 0) view.local()[0] = -1.0;
    EXPECT_DOUBLE_EQ(v.storage()[0], -1.0);
  });
}

TEST(PstlMapping, NativeFromDseqCopiesReceivedData) {
  rts::Domain d("map2", 3);
  d.run([](rts::DomainContext& ctx) {
    dist::DSequence<double> seq(ctx.comm, 30);
    for (std::size_t li = 0; li < seq.local_size(); ++li)
      seq.local()[li] = static_cast<double>(seq.local_to_global(li)) * 0.5;
    DistributedVector<double> v = native_from_dseq(std::move(seq), ctx.comm);
    EXPECT_DOUBLE_EQ(par_sum(v), 0.5 * 29.0 * 30.0 / 2.0);
  });
}

}  // namespace
}  // namespace pardis::pstl
