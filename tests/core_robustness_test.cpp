// Robustness and regression tests for the ORB core: nested
// process_requests dispatch (the §4.2 pattern), client disappearance,
// IOR strings, protocol hardening, misuse of the skeleton API.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "core/ior.hpp"
#include "tests/support/calc_api.hpp"

namespace pardis::core {
namespace {

using calc_api::POA_calc;
using calc_api::vec;

// ---------------------------------------------------------------------------
// Regression: a long-running SPMD dispatch polls for requests while a
// client keeps hammering single objects on every server thread. This
// is the exact traffic pattern that exposed the dangling-key
// sequencing bug in Poa::dispatch (single-object requests silently
// stalled after a nested dispatch).
// ---------------------------------------------------------------------------

/// SPMD interface: one operation that busy-polls the POA.
class PollServant : public ServantBase {
 public:
  PollServant(core::Poa& poa, rts::Communicator& comm) : poa_(&poa), comm_(&comm) {}
  const char* _type_id() const override { return "IDL:poller:1.0"; }

  void _dispatch(ServerInvocation& inv) override {
    if (inv.operation() != "spin") throw NoImplement("poller: " + inv.operation());
    const Long rounds = inv.in_value<Long>();
    for (Long i = 0; i < rounds; ++i) {
      poa_->process_requests();
      std::this_thread::yield();
    }
    rts::barrier(*comm_);
    inv.out_value(rounds);
  }

 private:
  core::Poa* poa_;
  rts::Communicator* comm_;
};

/// Single-object interface: a sequenced counter.
class SeqCounterServant : public ServantBase {
 public:
  const char* _type_id() const override { return "IDL:seqcounter:1.0"; }

  void _dispatch(ServerInvocation& inv) override {
    if (inv.operation() != "next") throw NoImplement("seqcounter: " + inv.operation());
    const Long expected = inv.in_value<Long>();
    // The server-side counter must observe the client's invocation
    // order exactly (PARDIS preserves invocation sequence per binding).
    if (expected != count_)
      throw BadParam("sequence broken: got " + std::to_string(expected) + " want " +
                     std::to_string(count_));
    ++count_;
    inv.out_value(count_);
  }

 private:
  Long count_ = 0;
};

TEST(PoaNestedDispatch, SinglesKeepSequencingUnderNestedPolling) {
  transport::LocalTransport tp;
  InProcessRegistry reg;
  Orb orb(tp, reg);

  constexpr int kServerThreads = 3;
  rts::Domain server("nested", kServerThreads);
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& ctx) {
    Poa poa(orb, ctx);
    PollServant poller(poa, ctx.comm);
    poa.activate_spmd(poller, "poller");
    SeqCounterServant counter;
    poa.activate_single(counter, "counter" + std::to_string(ctx.rank));
    // Every rank's single object must be registered before the client
    // is told the server is up.
    rts::barrier(ctx.comm);
    if (ctx.rank == 0) pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  for (int iteration = 0; iteration < 10; ++iteration) {
    ClientCtx ctx(orb);
    // Kick off the long-running SPMD spin.
    auto spin_binding = ::pardis::core::bind(ctx, "poller", "", "IDL:poller:1.0");
    ClientRequest spin_req(*spin_binding, "spin", false, false);
    spin_req.in_value<Long>(50);
    auto spin_pending = spin_req.invoke();
    auto spin_out = std::make_shared<Long>();
    spin_pending->set_decoder(
        [spin_out](ReplyDecoder& d) { *spin_out = d.out_value<Long>(); });

    // Meanwhile, strictly ordered traffic to every thread's single
    // object; any lost or reordered dispatch turns into a BadParam.
    std::vector<BindingPtr> counters;
    for (int r = 0; r < kServerThreads; ++r)
      counters.push_back(::pardis::core::bind(
          ctx, "counter" + std::to_string(r), "", "IDL:seqcounter:1.0"));
    const Long base = static_cast<Long>(iteration) * 20;
    for (Long i = 0; i < 20; ++i) {
      for (auto& b : counters) {
        ClientRequest req(*b, "next", false, false);
        req.in_value<Long>(base + i);
        auto pending = req.invoke();
        auto out = std::make_shared<Long>();
        pending->set_decoder([out](ReplyDecoder& d) { *out = d.out_value<Long>(); });
        pending->wait();
        EXPECT_EQ(*out, base + i + 1);
      }
    }
    spin_pending->wait();
    EXPECT_EQ(*spin_out, 50);
  }
  poa->deactivate();
  server.join();
}

// ---------------------------------------------------------------------------
// Server survives a client that disappears with replies in flight.
// ---------------------------------------------------------------------------

class SlowServant : public POA_calc {
 public:
  double dot(const vec&, const vec&) override { return 0; }
  void scale(double, const vec&, vec&) override {}
  Long counter(Long d) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return d;
  }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}
};

TEST(ClientDeath, ServerSurvivesUndeliverableReplies) {
  transport::LocalTransport tp;
  InProcessRegistry reg;
  Orb orb(tp, reg);
  rts::Domain server("survivor", 1);
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& ctx) {
    Poa poa(orb, ctx);
    SlowServant servant;
    poa.activate_spmd(servant, "survivor-calc");
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  {
    // This client fires a request and dies before the reply arrives.
    ClientCtx doomed(orb);
    auto proxy = calc_api::calc::_bind(doomed, "survivor-calc");
    Future<Long> f;
    proxy->counter_nb(7, f);
    // scope exit: endpoint closes while the servant is still sleeping
  }
  // The server must still answer a healthy client afterwards.
  ClientCtx ctx(orb);
  auto proxy = calc_api::calc::_bind(ctx, "survivor-calc");
  EXPECT_EQ(proxy->counter(9), 9);

  poa->deactivate();
  server.join();
}

// ---------------------------------------------------------------------------
// IOR strings and repository-less binding.
// ---------------------------------------------------------------------------

TEST(IorTest, RoundTripPreservesEverything) {
  ObjectRef ref;
  ref.type_id = "IDL:calc:1.0";
  ref.name = "ior-test";
  ref.host = "HOST2";
  ref.object_id = ObjectId::next();
  ref.spmd = true;
  transport::EndpointAddr ep;
  ep.kind = transport::AddrKind::kTcp;
  ep.tcp_host = "127.0.0.1";
  ep.tcp_port = 1234;
  ep.tcp_ep = 5;
  ref.thread_eps = {ep, ep};
  ref.arg_specs["solve"] = {DistSpec::cyclic(8), DistSpec::concentrated(1)};

  const std::string ior = object_to_string(ref);
  EXPECT_EQ(ior.rfind("IOR:", 0), 0u);
  EXPECT_EQ(string_to_object(ior), ref);
}

TEST(IorTest, MalformedInputsRejected) {
  EXPECT_THROW(string_to_object("not-an-ior"), BadParam);
  EXPECT_THROW(string_to_object("IOR:abc"), BadParam);   // odd length
  EXPECT_THROW(string_to_object("IOR:zz"), BadParam);    // non-hex
  EXPECT_THROW(string_to_object("IOR:0102"), MarshalError);  // truncated payload
  EXPECT_THROW(object_to_string(ObjectRef{}), BadParam);
}

TEST(IorTest, BindObjectThroughStringifiedReference) {
  transport::LocalTransport tp;
  InProcessRegistry reg;
  Orb orb(tp, reg);
  rts::Domain server("ior-server", 2);
  std::promise<Poa*> pp;
  std::promise<std::string> ior_promise;
  auto pf = pp.get_future();
  auto ior_f = ior_promise.get_future();
  server.start([&](rts::DomainContext& ctx) {
    Poa poa(orb, ctx);
    SlowServant servant;
    ObjectRef ref = poa.activate_spmd(servant, "ior-calc");
    if (ctx.rank == 0) {
      ior_promise.set_value(object_to_string(ref));
      pp.set_value(&poa);
    }
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();
  const std::string ior = ior_f.get();

  // Bind with no repository lookup at all.
  ClientCtx ctx(orb);
  ObjectRef ref = string_to_object(ior);
  auto binding = bind_object(ctx, ref, calc_api::kCalcTypeId);
  ClientRequest req(*binding, "counter", false, false);
  req.in_value<Long>(3);
  auto pending = req.invoke();
  auto out = std::make_shared<Long>();
  pending->set_decoder([out](ReplyDecoder& d) { *out = d.out_value<Long>(); });
  pending->wait();
  EXPECT_EQ(*out, 3);

  poa->deactivate();
  server.join();
}

// ---------------------------------------------------------------------------
// Protocol hardening.
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RequestHeaderRoundTrip) {
  RequestHeader h;
  h.request_id = RequestId::next();
  h.binding_id = 42;
  h.seq_no = 7;
  h.object_id = ObjectId::next();
  h.operation = "solve";
  h.flags = kFlagOneway | kFlagCollective;
  h.client_rank = 2;
  h.client_size = 4;
  h.reply_to.kind = transport::AddrKind::kLocal;
  h.reply_to.local_id = 99;

  ByteBuffer buf;
  CdrWriter w(buf);
  h.marshal(w);
  CdrReader r(buf.view());
  RequestHeader back = RequestHeader::unmarshal(r);
  EXPECT_EQ(back.request_id, h.request_id);
  EXPECT_EQ(back.binding_id, h.binding_id);
  EXPECT_EQ(back.seq_no, h.seq_no);
  EXPECT_EQ(back.operation, "solve");
  EXPECT_TRUE(back.oneway());
  EXPECT_TRUE(back.collective());
  EXPECT_EQ(back.client_rank, 2);
  EXPECT_EQ(back.reply_to.local_id, 99u);
}

TEST(ProtocolTest, BadClientRankRejected) {
  RequestHeader h;
  h.operation = "x";
  h.client_rank = 5;
  h.client_size = 2;
  ByteBuffer buf;
  CdrWriter w(buf);
  h.marshal(w);
  CdrReader r(buf.view());
  EXPECT_THROW(RequestHeader::unmarshal(r), MarshalError);
}

TEST(ProtocolTest, ReplyHeaderCarriesErrors) {
  ReplyHeader h;
  h.request_id = RequestId::next();
  h.server_rank = 1;
  h.server_size = 3;
  h.status = ReplyStatus::kSystemException;
  h.error_code = ErrorCode::kObjectNotExist;
  h.error_message = "gone";
  ByteBuffer buf;
  CdrWriter w(buf);
  h.marshal(w);
  CdrReader r(buf.view());
  ReplyHeader back = ReplyHeader::unmarshal(r);
  EXPECT_EQ(back.status, ReplyStatus::kSystemException);
  EXPECT_THROW(throw_reply_error(back), ObjectNotExist);
}

TEST(ProtocolTest, GarbageReplyStatusRejected) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_ulonglong(1);
  w.write_long(0);
  w.write_long(1);
  w.write_octet(99);  // invalid status
  CdrReader r(buf.view());
  EXPECT_THROW(ReplyHeader::unmarshal(r), MarshalError);
}

// ---------------------------------------------------------------------------
// DistSpec edge cases.
// ---------------------------------------------------------------------------

TEST(DistSpecTest, InstantiateAdaptsToDomainWidth) {
  // Concentrated root beyond the width clamps to 0.
  DistSpec conc = DistSpec::concentrated(6);
  EXPECT_EQ(conc.instantiate(100, 4).root(), 0);
  DistSpec conc2 = DistSpec::concentrated(2);
  EXPECT_EQ(conc2.instantiate(100, 4).root(), 2);

  // Irregular proportions pad/truncate to the actual width.
  DistSpec irr = DistSpec::irregular({1.0, 3.0});
  dist::Distribution d = irr.instantiate(100, 4);
  EXPECT_EQ(d.nranks(), 4);
  EXPECT_EQ(d.global_size(), 100u);

  // CDR round trip.
  auto buf = cdr_encode(irr);
  EXPECT_EQ(cdr_decode<DistSpec>(buf.view()), irr);
}

TEST(DistSpecTest, SpecForFallsBackToBlock) {
  ObjectRef ref;
  ref.arg_specs["solve"] = {DistSpec::cyclic(4)};
  EXPECT_EQ(ref.spec_for("solve", 0).kind, dist::DistKind::kCyclic);
  EXPECT_EQ(ref.spec_for("solve", 5).kind, dist::DistKind::kBlock);
  EXPECT_EQ(ref.spec_for("nosuch", 0).kind, dist::DistKind::kBlock);
}

// ---------------------------------------------------------------------------
// Collocation host rule: same process but different modeled host goes
// through the transport.
// ---------------------------------------------------------------------------

TEST(CollocationRule, DifferentModeledHostIsNotCollocated) {
  sim::Testbed tb = sim::Testbed::paper_testbed();
  transport::LocalTransport tp(&tb);
  InProcessRegistry reg;
  Orb orb(tp, reg);
  rts::Domain server("colloc-host", 1, tb.host(sim::Testbed::kHost2));
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& ctx) {
    Poa poa(orb, ctx);
    SlowServant servant;
    poa.activate_spmd(servant, "far-calc");
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  rts::Domain client("client", 1, tb.host(sim::Testbed::kHost1));
  client.run([&](rts::DomainContext& dctx) {
    ClientCtx ctx(orb, dctx);
    auto proxy = calc_api::calc::_bind(ctx, "far-calc");
    EXPECT_EQ(proxy->_binding()->collocated_servant(), nullptr);
    EXPECT_EQ(proxy->counter(5), 5);
  });

  poa->deactivate();
  server.join();
}

// ---------------------------------------------------------------------------
// Partial failure across an SPMD reply set: one server rank raises, the
// rest reply kOk. The error must surface as the typed exception on the
// client — never a hang waiting for the "missing" OK reply.
// ---------------------------------------------------------------------------

class PartialFailServant : public POA_calc {
 public:
  explicit PartialFailServant(int rank) : rank_(rank) {}
  double dot(const vec&, const vec&) override { return 0; }
  void scale(double factor, const vec& v, vec& r) override {
    if (rank_ == 1) throw BadParam("rank 1 refuses to scale");
    for (std::size_t i = 0; i < v.local_size(); ++i) r.local()[i] = factor * v.local()[i];
  }
  Long counter(Long d) override { return d; }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  int rank_;
};

TEST(PartialFailure, OneRankErrorSurfacesWithoutHanging) {
  transport::LocalTransport tp;
  InProcessRegistry reg;
  Orb orb(tp, reg);
  rts::Domain server("partial-fail", 3);
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& ctx) {
    Poa poa(orb, ctx);
    PartialFailServant servant(ctx.rank);
    poa.activate_spmd(servant, "partial-calc");
    if (ctx.rank == 0) pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  ClientCtx ctx(orb);
  auto binding = ::pardis::core::bind(ctx, "partial-calc", "", calc_api::kCalcTypeId);
  // scale has a distributed out argument, so the client expects one
  // reply per server rank — here 2 OKs and 1 error.
  const std::vector<double> in{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> out(in.size(), 0.0);
  ClientRequest req(*binding, "scale", false, true);
  req.in_value(2.0);
  auto v = single_view(in);
  req.in_dseq(v);
  auto r = single_view(out);
  req.out_dseq_expected(r.distribution());
  auto pending = req.invoke();
  pending->set_decoder([&r](ReplyDecoder& d) { d.out_dseq(r); });
  EXPECT_THROW(pending->wait(), BadParam);

  // The binding stays usable: the server dispatched and answered; only
  // this invocation failed.
  ClientRequest again(*binding, "counter", false, false);
  again.in_value<Long>(11);
  auto p2 = again.invoke();
  auto got = std::make_shared<Long>();
  p2->set_decoder([got](ReplyDecoder& d) { *got = d.out_value<Long>(); });
  p2->wait();
  EXPECT_EQ(*got, 11);

  poa->deactivate();
  server.join();
}

}  // namespace
}  // namespace pardis::core
