// Workloads: linear solvers and the DNA database.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workloads/dna.hpp"
#include "workloads/linear.hpp"

namespace pardis::workloads {
namespace {

class SolverSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverSizeTest, GaussianRecoversTrueSolution) {
  DenseSystem sys = make_system(GetParam(), 42);
  auto x = gaussian_solve(sys.a, sys.b);
  EXPECT_LT(max_abs_diff(x, sys.x_true), 1e-9);
}

TEST_P(SolverSizeTest, JacobiConvergesToSameSolution) {
  DenseSystem sys = make_system(GetParam(), 43);
  auto direct = gaussian_solve(sys.a, sys.b);
  auto iter = jacobi_solve(sys.a, sys.b, 1e-10);
  EXPECT_LT(iter.residual, 1e-10);
  // §4.1's agreement computation between the two methods.
  EXPECT_LT(max_abs_diff(direct, iter.x), 1e-8);
  EXPECT_GE(iter.iterations, 2u);  // n=1 converges in two sweeps
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverSizeTest, ::testing::Values(1, 2, 5, 20, 60));

TEST(LinearTest, SystemIsReproducible) {
  DenseSystem a = make_system(10, 7);
  DenseSystem b = make_system(10, 7);
  EXPECT_EQ(a.b, b.b);
  EXPECT_EQ(a.a[3], b.a[3]);
  DenseSystem c = make_system(10, 8);
  EXPECT_NE(a.b, c.b);
}

TEST(LinearTest, SingularMatrixThrows) {
  std::vector<std::vector<double>> a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(gaussian_solve(a, {1.0, 2.0}), BadParam);
}

TEST(LinearTest, FlopModelsScaleCorrectly) {
  EXPECT_GT(gaussian_flops(400), 8 * gaussian_flops(200) * 0.8);
  EXPECT_DOUBLE_EQ(jacobi_flops(100, 10), 10 * jacobi_flops(100, 1));
  // Crossover the paper's Fig. 2 relies on: direct is O(n^3), Jacobi
  // O(n^2 * iters), so for fixed tolerance the direct method grows
  // faster with n.
  const std::size_t it = jacobi_iterations_estimate(1000, 1e-6);
  EXPECT_GT(gaussian_flops(1200) / jacobi_flops(1200, it),
            gaussian_flops(200) / jacobi_flops(200, it));
}

TEST(DnaTest, DatabaseIsReproducibleAndWellFormed) {
  auto db = make_dna_database(50, 10, 20, 99);
  ASSERT_EQ(db.size(), 50u);
  for (const auto& s : db) {
    EXPECT_GE(s.size(), 10u);
    EXPECT_LE(s.size(), 20u);
    for (char c : s) EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
  }
  EXPECT_EQ(db, make_dna_database(50, 10, 20, 99));
}

TEST(DnaTest, ExactMatch) {
  EXPECT_TRUE(matches_exact("ACGTACGT", "GTAC"));
  EXPECT_FALSE(matches_exact("ACGTACGT", "GGG"));
  EXPECT_TRUE(matches_exact("ACGT", "ACGT"));
  EXPECT_FALSE(matches_exact("ACG", "ACGT"));
}

TEST(DnaTest, TranspositionDerivative) {
  // "ACGT" with adjacent swap at 1 gives "AGCT", which contains "GCT".
  EXPECT_TRUE(matches_transposition("ACGT", "GCT"));
  EXPECT_FALSE(matches_transposition("AAAA", "CC"));
  // Exact occurrences do not count unless a swap also produces one...
  // swapping equal characters preserves the string, so they do when a
  // pair of equal neighbours exists.
  EXPECT_TRUE(matches_transposition("AACGT", "ACGT"));
}

TEST(DnaTest, DeletionDerivative) {
  // deleting 'C' from "ACGT" leaves "AGT".
  EXPECT_TRUE(matches_deletion("ACGT", "AGT"));
  EXPECT_FALSE(matches_deletion("ACGT", "TTT"));
  EXPECT_FALSE(matches_deletion("A", "A"));  // nothing left to delete into a match
}

TEST(DnaTest, SubstitutionDerivative) {
  // one mismatch allowed inside a window
  EXPECT_TRUE(matches_substitution("ACGT", "AGGT"));
  EXPECT_TRUE(matches_substitution("ACGT", "ACGT"));
  EXPECT_FALSE(matches_substitution("ACGT", "GGGT"));  // two mismatches
  EXPECT_FALSE(matches_substitution("ACG", "ACGT"));   // pattern longer than seq
}

TEST(DnaTest, AdditionDerivative) {
  // inserting 'T' into "ACG" gives "ATCG" etc.
  EXPECT_TRUE(matches_addition("ACG", "ATC"));
  EXPECT_TRUE(matches_addition("ACG", "ACG"));  // already present
  EXPECT_FALSE(matches_addition("AAA", "CC"));
}

TEST(DnaTest, SearchRangeFiltersByKind) {
  std::vector<std::string> db{"ACGTACGT", "TTTTTTTT", "ACGGACGG"};
  auto exact = search_range(db, 0, db.size(), "CGTA", EditKind::kExact);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0], "ACGTACGT");
  EXPECT_THROW(search_range(db, 2, 1, "A", EditKind::kExact), BadParam);
  EXPECT_THROW(search_range(db, 0, 9, "A", EditKind::kExact), BadParam);
}

TEST(DnaTest, CostModelKindsHaveDistinctWeights) {
  // The five list servers cost different amounts per query — the
  // imbalance behind Fig. 4's count-based placement dip.
  const double exact = match_flops(100, 5, EditKind::kExact);
  const double sub = match_flops(100, 5, EditKind::kSubstitution);
  const double trans = match_flops(100, 5, EditKind::kTransposition);
  const double add = match_flops(100, 5, EditKind::kAddition);
  EXPECT_LT(exact, sub);
  EXPECT_LT(sub, trans);
  EXPECT_LT(trans, add);
  auto db = make_dna_database(10, 50, 50, 1);
  EXPECT_DOUBLE_EQ(search_flops(db, 0, 10, 5, EditKind::kExact), 10 * exact * (50.0 / 100.0));
}

}  // namespace
}  // namespace pardis::workloads
