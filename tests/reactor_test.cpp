// pardis_reactor: epoll event-loop transport, packed-frame batching,
// and lock-free POA mailboxes.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "reactor/mailbox.hpp"
#include "reactor/reactor.hpp"
#include "reactor/reactor_transport.hpp"
#include "sim/testbed.hpp"
#include "tests/support/calc_api.hpp"
#include "transport/tcp_transport.hpp"
#include "transport/wire_guard.hpp"

namespace pardis {
namespace {

using namespace std::chrono_literals;
using core::ClientCtx;
using core::InProcessRegistry;
using core::Orb;
using core::Poa;
using reactor::ReactorTransport;
using transport::AddrKind;
using transport::Endpoint;
using transport::EndpointAddr;
using transport::RsrMessage;

constexpr std::size_t kHeaderSize = 32;

ByteBuffer text_payload(const std::string& s) {
  ByteBuffer b;
  CdrWriter w(b);
  w.write_string(s);
  return b;
}

std::string text_of(const RsrMessage& m) {
  CdrReader r(m.payload.view(), m.little_endian);
  return r.read_string();
}

bool spin_until(const std::function<bool()>& pred,
                std::chrono::milliseconds budget = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

/// Every reactor/wire knob this suite touches, restored per test: the
/// knobs are process-wide and gtest runs cases in one process.
class ReactorFixture : public ::testing::Test {
 protected:
  void SetUp() override { wire::guard().reset(); }
  void TearDown() override {
    reactor::set_enabled(-1);
    reactor::set_loop_count(-1);
    reactor::set_pack(-1);
    reactor::set_flush_window_us(-1);
    reactor::set_pack_threshold_bytes(-1);
    reactor::set_spill_limit_bytes(-1);
    wire::set_hello(-1);
    wire::set_bad_frame_limit(-1);
    wire::guard().reset();
    transport::set_tcp_nodelay(-1);
    obs::set_enabled(false);
  }
};

// --- MPSC mailbox queue -----------------------------------------------------

TEST(MpscQueue, SingleThreadFifo) {
  reactor::MpscQueue<int> q;
  EXPECT_EQ(q.try_pop(), nullptr);
  for (int i = 0; i < 100; ++i) q.push(new reactor::MpscQueue<int>::Node(i));
  for (int i = 0; i < 100; ++i) {
    auto* n = q.try_pop();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, i);
    delete n;
  }
  EXPECT_EQ(q.try_pop(), nullptr);
}

TEST(MpscQueue, ManyProducersDeliverEverythingExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  reactor::MpscQueue<int> q;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        q.push(new reactor::MpscQueue<int>::Node(p * kPerProducer + i));
    });
  std::vector<int> seen_count(kProducers * kPerProducer, 0);
  int drained = 0;
  std::vector<int> last_from(kProducers, -1);
  while (drained < kProducers * kPerProducer) {
    auto* n = q.try_pop();
    if (n == nullptr) continue;  // empty or producer mid-push
    ++seen_count[static_cast<std::size_t>(n->value)];
    // Per-producer FIFO: values from one producer arrive in push order.
    const int p = n->value / kPerProducer;
    EXPECT_LT(last_from[static_cast<std::size_t>(p)], n->value);
    last_from[static_cast<std::size_t>(p)] = n->value;
    delete n;
    ++drained;
  }
  for (auto& t : producers) t.join();
  for (int c : seen_count) EXPECT_EQ(c, 1);
  EXPECT_EQ(q.try_pop(), nullptr);
}

// --- Endpoint mailbox mode --------------------------------------------------

EndpointAddr mailbox_addr() {
  EndpointAddr addr;
  addr.kind = AddrKind::kTcp;
  return addr;
}

TEST(MailboxEndpoint, FifoPollAndPending) {
  Endpoint ep(mailbox_addr());
  ep.use_mailbox();
  EXPECT_TRUE(ep.mailbox());
  EXPECT_FALSE(ep.poll().has_value());
  for (int i = 0; i < 20; ++i) {
    RsrMessage m;
    m.handler = 1;
    m.payload = text_payload(std::to_string(i));
    ep.enqueue(std::move(m));
  }
  EXPECT_EQ(ep.pending(), 20u);
  for (int i = 0; i < 20; ++i) {
    auto m = ep.poll();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(text_of(*m), std::to_string(i));
  }
  EXPECT_FALSE(ep.poll().has_value());
}

TEST(MailboxEndpoint, CapacityBoundDropsAndCounts) {
  Endpoint ep(mailbox_addr());
  ep.use_mailbox();
  ep.set_capacity(3);
  for (int i = 0; i < 10; ++i) {
    RsrMessage m;
    m.handler = 1;
    m.payload = text_payload("x");
    ep.enqueue(std::move(m));
  }
  EXPECT_EQ(ep.pending(), 3u);
  EXPECT_EQ(ep.dropped(), 7u);
  // Draining frees seats for new deliveries.
  EXPECT_TRUE(ep.poll().has_value());
  RsrMessage m;
  m.handler = 1;
  m.payload = text_payload("y");
  ep.enqueue(std::move(m));
  EXPECT_EQ(ep.pending(), 3u);
}

TEST(MailboxEndpoint, DeliveryFilterConsumesBeforeTheQueue) {
  Endpoint ep(mailbox_addr());
  ep.use_mailbox();
  std::atomic<int> filtered{0};
  ep.set_delivery_filter([&](RsrMessage& m) {
    if (m.handler == 7) {
      filtered.fetch_add(1);
      return true;  // consumed
    }
    return false;
  });
  for (int i = 0; i < 6; ++i) {
    RsrMessage m;
    m.handler = (i % 2 == 0) ? 7 : 1;
    ep.enqueue(std::move(m));
  }
  EXPECT_EQ(filtered.load(), 3);
  EXPECT_EQ(ep.pending(), 3u);
}

TEST(MailboxEndpoint, WaitForDistinguishesCloseFromTimeout) {
  Endpoint ep(mailbox_addr());
  ep.use_mailbox();
  auto res = ep.wait_for(10ms);
  EXPECT_TRUE(res.timed_out());
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    ep.close();
  });
  res = ep.wait_for(5s);
  EXPECT_TRUE(res.closed());
  closer.join();
}

TEST(MailboxEndpoint, CrossThreadWakeupsNeverLoseMessages) {
  // Stresses the sleeping-consumer edge: the consumer parks between
  // most deliveries, so every producer push races the sleep protocol.
  Endpoint ep(mailbox_addr());
  ep.use_mailbox();
  constexpr int kMessages = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      RsrMessage m;
      m.handler = 1;
      m.payload = text_payload(std::to_string(i));
      ep.enqueue(std::move(m));
      if (i % 64 == 0) std::this_thread::sleep_for(1ms);
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    auto res = ep.wait_for(5s);
    ASSERT_EQ(res.status, transport::WaitStatus::kMessage) << "at message " << i;
    EXPECT_EQ(text_of(*res.message), std::to_string(i));
  }
  producer.join();
}

TEST(MailboxEndpoint, WaitForDeadlineSurvivesSpuriousWakeups) {
  // Mailbox twin of TransportTest.WaitForDeadlineSurvivesSpuriousWakeups:
  // two waiters share one endpoint; a single message wakes both
  // (notify_all), and the loser must still time out against its
  // ORIGINAL deadline instead of restarting the full wait.
  Endpoint ep(mailbox_addr());
  ep.use_mailbox();
  const auto t0 = std::chrono::steady_clock::now();
  auto waiter = [&] { return ep.wait_for(250ms); };
  auto f1 = std::async(std::launch::async, waiter);
  auto f2 = std::async(std::launch::async, waiter);
  std::this_thread::sleep_for(120ms);
  RsrMessage m;
  m.handler = 1;
  ep.enqueue(std::move(m));
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ((r1.status == transport::WaitStatus::kMessage) +
                (r2.status == transport::WaitStatus::kMessage),
            1);
  EXPECT_EQ((r1.timed_out()) + (r2.timed_out()), 1);
  // A deadline-restart bug would hold the losing waiter until
  // ~120ms + 250ms; the once-computed deadline releases it at 250ms.
  EXPECT_LT(elapsed, 360ms);
}

// --- Raw-socket helpers for wire-format tests -------------------------------

/// Minimal blocking listener for capturing exactly what a transport
/// puts on the wire.
class RawListener {
 public:
  RawListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(fd_, 8), 0);
  }
  ~RawListener() {
    if (conn_ >= 0) ::close(conn_);
    if (fd_ >= 0) ::close(fd_);
  }

  UShort port() const { return port_; }

  EndpointAddr addr(ULongLong ep) const {
    EndpointAddr a;
    a.kind = AddrKind::kTcp;
    a.tcp_host = "127.0.0.1";
    a.tcp_port = port_;
    a.tcp_ep = ep;
    return a;
  }

  /// Accepts the first connection (once) and reads exactly `n` bytes.
  std::vector<Octet> read_bytes(std::size_t n) {
    if (conn_ < 0) {
      pollfd pfd{fd_, POLLIN, 0};
      EXPECT_GT(::poll(&pfd, 1, 5000), 0) << "no connection arrived";
      conn_ = ::accept(fd_, nullptr, nullptr);
      EXPECT_GE(conn_, 0);
    }
    std::vector<Octet> out(n);
    std::size_t got = 0;
    while (got < n) {
      pollfd pfd{conn_, POLLIN, 0};
      if (::poll(&pfd, 1, 5000) <= 0) break;
      const ssize_t r = ::recv(conn_, out.data() + got, n - got, 0);
      if (r <= 0) break;
      got += static_cast<std::size_t>(r);
    }
    out.resize(got);
    return out;
  }

 private:
  int fd_ = -1;
  int conn_ = -1;
  UShort port_ = 0;
};

// --- Wire parity ------------------------------------------------------------

TEST_F(ReactorFixture, FactorySelectsEngineByKnob) {
  reactor::set_enabled(0);
  auto classic = reactor::make_tcp_transport(0);
  EXPECT_NE(dynamic_cast<transport::TcpTransport*>(classic.get()), nullptr);
  reactor::set_enabled(1);
  auto engine = reactor::make_tcp_transport(0);
  EXPECT_NE(dynamic_cast<ReactorTransport*>(engine.get()), nullptr);
}

TEST_F(ReactorFixture, GoldenBytesIdenticalToTcpTransportWithPackOff) {
  // The acceptance gate for "wire unchanged": with packing off (and
  // the shared hello knob off so the first frame is the RSR itself),
  // the reactor's byte stream for a message sequence must be
  // IDENTICAL to TcpTransport's — same headers, same timestamps
  // (virtual clock unbound reads 0), same framing.
  wire::set_hello(0);
  reactor::set_pack(0);

  const std::vector<std::string> script = {"alpha", "", "a much longer payload string ...",
                                           "omega"};
  std::size_t wire_len = 0;
  for (const auto& s : script) wire_len += kHeaderSize + text_payload(s).size();

  std::vector<Octet> tcp_bytes;
  {
    RawListener sink;
    transport::TcpTransport sender(0);
    for (std::size_t i = 0; i < script.size(); ++i)
      sender.rsr(sink.addr(40 + i), 3, text_payload(script[i]), "");
    tcp_bytes = sink.read_bytes(wire_len);
  }
  std::vector<Octet> reactor_bytes;
  {
    RawListener sink;
    ReactorTransport sender(0);
    for (std::size_t i = 0; i < script.size(); ++i)
      sender.rsr(sink.addr(40 + i), 3, text_payload(script[i]), "");
    reactor_bytes = sink.read_bytes(wire_len);
  }
  ASSERT_EQ(tcp_bytes.size(), wire_len);
  EXPECT_EQ(reactor_bytes, tcp_bytes);
}

TEST_F(ReactorFixture, PinnedPackedFrameFormat) {
  // Pins the PACK wire layout so it can never drift silently: outer
  // 32-byte header addressed to endpoint 0 with kHandlerPack, payload
  // a run of 24-byte always-little-endian subheaders
  // [u64 dst][u32 handler][u32 len][f64 ts] + payload bytes.
  wire::set_hello(0);
  reactor::set_pack(1);

  RawListener sink;
  ReactorTransport sender(0);
  const ByteBuffer payload = text_payload("pinned");
  // First send on an idle connection: window 0 flushes inline as a
  // single-frame PACK.
  sender.rsr(sink.addr(0x1122334455667788ull), 4, payload.clone(), "");

  ByteBuffer expected;
  CdrWriter w(expected);
  w.write_octet(kNativeLittleEndian ? 1 : 0);
  w.write_ulong(static_cast<ULong>(transport::kPackSubheaderSize + payload.size()));
  w.write_ulonglong(0);
  w.write_ulong(transport::kHandlerPack);
  w.write_double(0.0);
  Octet sub[transport::kPackSubheaderSize] = {};
  const ULongLong dst = 0x1122334455667788ull;
  for (int i = 0; i < 8; ++i) sub[i] = static_cast<Octet>((dst >> (8 * i)) & 0xff);
  sub[8] = 4;                                            // handler, LE u32
  sub[12] = static_cast<Octet>(payload.size() & 0xff);   // len, LE u32
  // bytes 16..23: f64 timestamp 0.0 == all zero
  expected.append_raw(sub, sizeof(sub));
  expected.append(payload.view());

  const auto got = sink.read_bytes(expected.size());
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(0, std::memcmp(got.data(), expected.data(), got.size()));
}

// --- Round trips ------------------------------------------------------------

TEST_F(ReactorFixture, ManyMessagesKeepOrderWithPackingOn) {
  reactor::set_pack(1);
  ReactorTransport server(0);
  ReactorTransport client(0);
  auto ep = server.create_endpoint("");
  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i)
    client.rsr(ep->addr(), 2, text_payload(std::to_string(i)), "");
  for (int i = 0; i < kCount; ++i) {
    auto res = ep->wait_for(5s);
    ASSERT_EQ(res.status, transport::WaitStatus::kMessage) << "at " << i;
    EXPECT_EQ(text_of(*res.message), std::to_string(i));
  }
}

TEST_F(ReactorFixture, LargePayloadBypassesPacking) {
  reactor::set_pack(1);
  ReactorTransport server(0);
  ReactorTransport client(0);
  auto ep = server.create_endpoint("");
  ByteBuffer big;
  CdrWriter w(big);
  std::string s(1 << 20, 'q');
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<char>('a' + (i % 17));
  w.write_string(s);
  client.rsr(ep->addr(), 2, std::move(big), "");
  auto res = ep->wait_for(10s);
  ASSERT_EQ(res.status, transport::WaitStatus::kMessage);
  EXPECT_EQ(text_of(*res.message), s);
}

TEST_F(ReactorFixture, InteropWithClassicTcpTransportBothWays) {
  // Pack-off parity in both directions (the pack-on direction is
  // covered by PackedFramesReachClassicTcpReceiver: a classic reader
  // demultiplexes kHandlerPack, since the one-way hello gives a
  // packing sender no way to learn which engine its peer runs).
  ReactorTransport reactor_side(0);
  transport::TcpTransport classic_side(0);
  auto reactor_ep = reactor_side.create_endpoint("");
  auto classic_ep = classic_side.create_endpoint("");

  classic_side.rsr(reactor_ep->addr(), 2, text_payload("old->new"), "");
  auto res = reactor_ep->wait_for(5s);
  ASSERT_EQ(res.status, transport::WaitStatus::kMessage);
  EXPECT_EQ(text_of(*res.message), "old->new");

  reactor::set_pack(0);
  reactor_side.rsr(classic_ep->addr(), 2, text_payload("new->old"), "");
  res = classic_ep->wait_for(5s);
  ASSERT_EQ(res.status, transport::WaitStatus::kMessage);
  EXPECT_EQ(text_of(*res.message), "new->old");
}

TEST_F(ReactorFixture, PackedFramesReachClassicTcpReceiver) {
  // Mixed-knob deployments: a packing reactor sender talking to a
  // classic thread-per-connection receiver. The hello handshake is
  // one-way (the acceptor never announces itself), so the sender
  // cannot know which engine its peer runs — interop works because
  // the classic reader demultiplexes kHandlerPack itself.
  reactor::set_pack(1);
  reactor::set_flush_window_us(2000);
  ReactorTransport reactor_side(0);
  transport::TcpTransport classic_side(0);
  auto ep = classic_side.create_endpoint("");
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i)
    reactor_side.rsr(ep->addr(), 2, text_payload(std::to_string(i)), "");
  for (int i = 0; i < kCount; ++i) {
    auto res = ep->wait_for(5s);
    ASSERT_EQ(res.status, transport::WaitStatus::kMessage) << "at " << i;
    EXPECT_EQ(text_of(*res.message), std::to_string(i));
  }
}

TEST_F(ReactorFixture, PackThresholdClampsToHalfTheFrameBound) {
  // A packed payload can approach twice the flush threshold (the
  // flush fires after the append that crossed it), so an oversized
  // PARDIS_REACTOR_PACK_BYTES must clamp to half the receiver's frame
  // bound instead of producing messages the peer would reject.
  reactor::set_pack_threshold_bytes(
      static_cast<long>(wire::max_frame_bytes() * 4));
  EXPECT_EQ(reactor::pack_threshold_bytes(), wire::max_frame_bytes() / 2);
  reactor::set_pack_threshold_bytes(4096);
  EXPECT_EQ(reactor::pack_threshold_bytes(), 4096u);
}

TEST_F(ReactorFixture, AdaptiveWindowCoalescesBurstsIntoFewerWireMessages) {
  reactor::set_pack(1);
  reactor::set_flush_window_us(2000);
  obs::set_enabled(true);
  obs::Counter& packs = obs::metrics().counter("transport.reactor.packs_sent");
  obs::Counter& frames = obs::metrics().counter("transport.reactor.packed_frames_sent");
  const auto packs0 = packs.value();
  const auto frames0 = frames.value();

  ReactorTransport server(0);
  ReactorTransport client(0);
  auto ep = server.create_endpoint("");
  constexpr int kBurst = 300;
  for (int i = 0; i < kBurst; ++i)
    client.rsr(ep->addr(), 2, text_payload(std::to_string(i)), "");
  for (int i = 0; i < kBurst; ++i)
    ASSERT_EQ(ep->wait_for(5s).status, transport::WaitStatus::kMessage);

  EXPECT_EQ(frames.value() - frames0, static_cast<std::uint64_t>(kBurst));
  // Back-to-back sends must widen the window and coalesce: strictly
  // fewer wire messages than frames (the exact ratio is adaptive).
  EXPECT_LT(packs.value() - packs0, static_cast<std::uint64_t>(kBurst));
}

// --- Hardening composition --------------------------------------------------

TEST_F(ReactorFixture, MalformedHandlerCountsBadFrameAndDisconnects) {
  wire::set_hello(0);
  ReactorTransport server(0);
  auto ep = server.create_endpoint("");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  ByteBuffer bogus;
  CdrWriter w(bogus);
  w.write_octet(kNativeLittleEndian ? 1 : 0);
  w.write_ulong(0);
  w.write_ulonglong(ep->addr().tcp_ep);
  w.write_ulong(99);  // not in the handler registry
  w.write_double(0.0);
  ASSERT_EQ(::send(fd, bogus.data(), bogus.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bogus.size()));
  // The reactor must disconnect: the peer observes EOF/reset.
  pollfd pfd{fd, POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, 5000), 0);
  char buf[8];
  EXPECT_LE(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
  EXPECT_FALSE(ep->poll().has_value());
}

TEST_F(ReactorFixture, ForeignHelloMagicRejectsTheConnection) {
  wire::set_hello(1);
  ReactorTransport server(0);
  auto ep = server.create_endpoint("");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  wire::Hello foreign;
  foreign.magic = 0xDEADBEEF;
  ByteBuffer hello_payload;
  CdrWriter hw(hello_payload);
  foreign.marshal(hw);
  ByteBuffer frame;
  CdrWriter w(frame);
  w.write_octet(kNativeLittleEndian ? 1 : 0);
  w.write_ulong(static_cast<ULong>(hello_payload.size()));
  w.write_ulonglong(0);
  w.write_ulong(transport::kHandlerHello);
  w.write_double(0.0);
  frame.append(hello_payload.view());
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  // The guard keys the offender by its remote address as the server
  // saw it — i.e. this socket's *local* ephemeral ip:port.
  sockaddr_in self{};
  socklen_t self_len = sizeof(self);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&self), &self_len), 0);
  const std::string offender =
      "127.0.0.1:" + std::to_string(ntohs(self.sin_port));
  pollfd pfd{fd, POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, 5000), 0);
  char buf[8];
  EXPECT_LE(::recv(fd, buf, sizeof(buf), 0), 0);  // disconnected
  ::close(fd);
  EXPECT_GT(wire::guard().bad_frames(offender), 0u);
}

// --- Shutdown ordering ------------------------------------------------------

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd"))
    ++n;
  return n;
}

TEST_F(ReactorFixture, ShutdownDrainsArmedPackBuffers) {
  // Frames accepted into a coalescing buffer whose window has not yet
  // expired must still reach the peer when the transport shuts down.
  reactor::set_pack(1);
  reactor::set_flush_window_us(500000);  // 0.5 s: expiry will not beat us
  ReactorTransport server(0);
  auto ep = server.create_endpoint("");
  constexpr int kCount = 32;
  {
    ReactorTransport client(0);
    for (int i = 0; i < kCount; ++i)
      client.rsr(ep->addr(), 2, text_payload(std::to_string(i)), "");
    client.shutdown();  // must flush the armed tail, not strand it
  }
  for (int i = 0; i < kCount; ++i) {
    auto res = ep->wait_for(5s);
    ASSERT_EQ(res.status, transport::WaitStatus::kMessage) << "lost message " << i;
    EXPECT_EQ(text_of(*res.message), std::to_string(i));
  }
}

TEST_F(ReactorFixture, ShutdownIsIdempotentAndFailsLaterSends) {
  ReactorTransport server(0);
  ReactorTransport client(0);
  auto ep = server.create_endpoint("");
  client.rsr(ep->addr(), 2, text_payload("pre"), "");
  EXPECT_EQ(ep->wait_for(5s).status, transport::WaitStatus::kMessage);
  client.shutdown();
  client.shutdown();
  EXPECT_THROW(client.rsr(ep->addr(), 2, text_payload("post"), ""), CommFailure);
}

ByteBuffer blob_payload(std::size_t n) {
  ByteBuffer b;
  CdrWriter w(b);
  w.write_string(std::string(n, 'b'));
  return b;
}

TEST_F(ReactorFixture, BackpressuredPeerNeverWedgesTheEventLoop) {
  // A peer that stops reading (the black-hole RawListener never calls
  // recv) must only park the thread sending to it. Everything here
  // shares one event loop: the unsent tail spills to the connection's
  // queue behind EPOLLOUT and the sender parks in a condvar that
  // releases conn->mutex, so the loop keeps serving its other
  // connections and shutdown() releases the parked sender instead of
  // hanging the destructor.
  wire::set_hello(0);
  reactor::set_pack(0);
  reactor::set_loop_count(1);
  reactor::set_spill_limit_bytes(64 * 1024);

  ReactorTransport client(0);
  ReactorTransport peer(0);
  auto client_ep = client.create_endpoint("");
  RawListener blackhole;  // connection sits in the accept queue; nothing reads

  std::atomic<int> sent{0};
  std::atomic<bool> parked_send_failed{false};
  std::thread sender([&] {
    const ByteBuffer blob = blob_payload(256 * 1024);
    try {
      for (int i = 0; i < 512; ++i) {  // ~128 MiB: cannot fit in any buffer
        client.rsr(blackhole.addr(7), 2, blob.clone(), "");
        sent.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const CommFailure&) {
      parked_send_failed.store(true, std::memory_order_relaxed);
    }
  });

  // Parked once progress stalls: the kernel buffers and the spill
  // budget are full and nothing on the far side will ever drain them.
  int last = -1;
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (std::chrono::steady_clock::now() < deadline) {
    const int now = sent.load(std::memory_order_relaxed);
    if (now > 0 && now == last) break;
    last = now;
    std::this_thread::sleep_for(200ms);
  }
  ASSERT_GT(sent.load(std::memory_order_relaxed), 0);
  ASSERT_LT(sent.load(std::memory_order_relaxed), 512) << "black hole drained?";

  // The loop serving the black-hole connection also serves the
  // connection accepted from `peer`; it must still read and deliver.
  peer.rsr(client_ep->addr(), 2, text_payload("alive"), "");
  auto res = client_ep->wait_for(5s);
  ASSERT_EQ(res.status, transport::WaitStatus::kMessage)
      << "event loop wedged behind a backpressured sender";
  EXPECT_EQ(text_of(*res.message), "alive");

  // Shutdown must fail the parked send promptly, not drain forever.
  const auto t0 = std::chrono::steady_clock::now();
  client.shutdown();
  sender.join();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
  EXPECT_TRUE(parked_send_failed.load(std::memory_order_relaxed));
}

TEST_F(ReactorFixture, ParkedSenderResumesWhenThePeerDrains) {
  // Backpressure is a pause, not a failure: once the slow peer reads,
  // the spilled tail drains over EPOLLOUT and the parked sender
  // finishes the batch with every byte intact and in order.
  wire::set_hello(0);
  reactor::set_pack(0);
  reactor::set_spill_limit_bytes(64 * 1024);

  RawListener sink;
  ReactorTransport client(0);
  const ByteBuffer blob = blob_payload(64 * 1024);
  constexpr int kFrames = 192;  // ~12 MiB through a 64 KiB spill budget
  const std::size_t wire_len = kFrames * (kHeaderSize + blob.size());
  std::atomic<int> sent{0};
  std::thread sender([&] {
    for (int i = 0; i < kFrames; ++i) {
      client.rsr(sink.addr(9), 2, blob.clone(), "");
      sent.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const auto bytes = sink.read_bytes(wire_len);  // drains while the sender parks
  sender.join();
  EXPECT_EQ(sent.load(std::memory_order_relaxed), kFrames);
  EXPECT_EQ(bytes.size(), wire_len);
}

TEST_F(ReactorFixture, LifecycleLeaksNoFileDescriptors) {
  // Warm up lazily created fds (epoll instances, /proc handles, ...).
  {
    ReactorTransport a(0);
    ReactorTransport b(0);
    auto ep = a.create_endpoint("");
    b.rsr(ep->addr(), 2, text_payload("warmup"), "");
    ep->wait_for(5s);
  }
  const std::size_t before = open_fd_count();
  {
    ReactorTransport server(0);
    ReactorTransport client(0);
    auto ep = server.create_endpoint("");
    for (int i = 0; i < 10; ++i)
      client.rsr(ep->addr(), 2, text_payload(std::to_string(i)), "");
    for (int i = 0; i < 10; ++i) ep->wait_for(5s);
  }
  EXPECT_EQ(open_fd_count(), before);
}

TEST_F(ReactorFixture, KillEndpointMidBatchFailsFastAndKeepsEarlierFrames) {
  reactor::set_pack(1);
  reactor::set_flush_window_us(500000);
  sim::Testbed tb = sim::Testbed::paper_testbed();
  ReactorTransport server(0, &tb);
  ReactorTransport client(0, &tb);
  auto ep = server.create_endpoint(sim::Testbed::kHost2);
  constexpr int kBefore = 8;
  for (int i = 0; i < kBefore; ++i)
    client.rsr(ep->addr(), 2, text_payload(std::to_string(i)), "");
  // The modeled process dies mid-batch: later sends fail fast at the
  // fault plan, already-accepted frames still drain at shutdown.
  tb.faults().kill_endpoint(ep->addr().tcp_ep);
  EXPECT_THROW(client.rsr(ep->addr(), 2, text_payload("dead"), ""), CommFailure);
  client.shutdown();
  for (int i = 0; i < kBefore; ++i) {
    auto res = ep->wait_for(5s);
    ASSERT_EQ(res.status, transport::WaitStatus::kMessage) << "lost pre-fault message " << i;
    EXPECT_EQ(text_of(*res.message), std::to_string(i));
  }
}

// --- The ORB over the reactor -----------------------------------------------

TEST_F(ReactorFixture, SpmdInvocationOverTheReactor) {
  reactor::set_pack(1);
  InProcessRegistry registry;
  ReactorTransport server_tp(0);
  ReactorTransport client_tp(0);
  Orb server_orb(server_tp, registry);
  Orb client_orb(client_tp, registry);

  std::atomic<Long> counter{0};
  struct CounterServant : calc_api::POA_calc {
    std::atomic<Long>& c;
    explicit CounterServant(std::atomic<Long>& c_in) : c(c_in) {}
    double dot(const calc_api::vec&, const calc_api::vec&) override { return 0; }
    void scale(double, const calc_api::vec&, calc_api::vec&) override {}
    Long counter(Long delta) override { return c.fetch_add(delta) + delta; }
    void note(const std::string&) override {}
    void boom(const std::string& msg) override { throw BadParam(msg); }
  };

  rts::Domain server("reactor-server", 1);
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  CounterServant servant(counter);
  server.start([&](rts::DomainContext& sctx) {
    Poa poa(server_orb, sctx);
    poa.activate_spmd(servant, "reactor-calc");
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  {
    ClientCtx ctx(client_orb);
    auto proxy = calc_api::calc::_bind(ctx, "reactor-calc", "");
    for (int i = 1; i <= 25; ++i) EXPECT_EQ(proxy->counter(1), i);
    EXPECT_THROW(proxy->boom("kaboom"), BadParam);
  }
  poa->deactivate();
  server.join();
  EXPECT_EQ(counter.load(), 25);
}

TEST_F(ReactorFixture, DestroyingTheEngineFailsPendingFuturesInsteadOfHanging) {
  reactor::set_pack(1);
  InProcessRegistry registry;
  auto server_tp = std::make_unique<ReactorTransport>(0);
  ReactorTransport client_tp(0);
  auto server_orb = std::make_unique<Orb>(*server_tp, registry);
  Orb client_orb(client_tp, registry);

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  struct ParkServant : calc_api::POA_calc {
    std::atomic<bool>& entered;
    std::atomic<bool>& release;
    ParkServant(std::atomic<bool>& e, std::atomic<bool>& r) : entered(e), release(r) {}
    double dot(const calc_api::vec&, const calc_api::vec&) override { return 0; }
    void scale(double, const calc_api::vec&, calc_api::vec&) override {}
    Long counter(Long delta) override {
      entered.store(true);
      while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return delta;
    }
    void note(const std::string&) override {}
    void boom(const std::string&) override {}
  };

  rts::Domain server("reactor-park-server", 1);
  std::promise<Poa*> pp;
  auto pf = pp.get_future();
  ParkServant servant(entered, release);
  server.start([&](rts::DomainContext& sctx) {
    Poa poa(*server_orb, sctx);
    poa.activate_spmd(servant, "reactor-park");
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  Poa* poa = pf.get();

  core::Future<Long> f;
  {
    ClientCtx ctx(client_orb);
    auto proxy = calc_api::calc::_bind(ctx, "reactor-park", "");
    proxy->_binding()->set_deadline(2000ms);
    proxy->counter_nb(5, f);
    ASSERT_TRUE(spin_until([&] { return entered.load(); }));
    // The server engine dies with the request parked in the servant:
    // its loops stop and every socket is severed, so the reply can
    // never arrive. The pending future must FAIL (deadline/comm
    // verdict), not hang.
    server_tp->shutdown();
    release.store(true);
    EXPECT_THROW(f.get(), SystemException);
  }
  poa->deactivate();
  server.join();
  server_orb.reset();
  server_tp.reset();
}

}  // namespace
}  // namespace pardis
