// IDL compiler: lexer, parser, semantic rules, codegen structure.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "idl/codegen.hpp"
#include "idl/include.hpp"
#include "idl/parser.hpp"

namespace pardis::idl {
namespace {

Spec parse(const std::string& src) { return Parser(src, "test.idl").parse(); }

std::string gen(const std::string& src, CodegenOptions opt = {}) {
  return generate_cpp(parse(src), opt);
}

TEST(IdlLexer, TokenizesPunctuationKeywordsLiterals) {
  Lexer lex("interface x { void f(in long v); }; // comment\n/* block */ 42 0x1F 2.5 \"s\"");
  auto toks = lex.tokenize();
  ASSERT_GE(toks.size(), 15u);
  EXPECT_EQ(toks[0].kind, Tok::kKwInterface);
  EXPECT_EQ(toks[1].kind, Tok::kIdentifier);
  EXPECT_EQ(toks[1].text, "x");
  auto it = std::find_if(toks.begin(), toks.end(),
                         [](const Token& t) { return t.kind == Tok::kIntLiteral; });
  ASSERT_NE(it, toks.end());
  EXPECT_EQ(it->int_value, 42);
  EXPECT_EQ((it + 1)->int_value, 0x1F);
  EXPECT_EQ((it + 2)->kind, Tok::kFloatLiteral);
  EXPECT_DOUBLE_EQ((it + 2)->float_value, 2.5);
  EXPECT_EQ((it + 3)->kind, Tok::kStringLiteral);
  EXPECT_EQ((it + 3)->text, "s");
}

TEST(IdlLexer, PragmaCapturesWholeLine) {
  Lexer lex("#pragma HPC++:vector \ntypedef dsequence<double> v;");
  auto toks = lex.tokenize();
  EXPECT_EQ(toks[0].kind, Tok::kPragma);
  EXPECT_EQ(toks[0].text, "HPC++:vector");
}

TEST(IdlLexer, ErrorsCarryLocation) {
  Lexer lex("interface x {\n  @bad\n};");
  try {
    lex.tokenize();
    FAIL() << "expected IdlError";
  } catch (const IdlError& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos);
  }
}

TEST(IdlParser, FullSpecRoundTrip) {
  Spec spec = parse(R"(
    const long N = 128;
    const long M = N * N + 2;
    enum status { OK, FAILED };
    struct rec { long id; string name; };
    typedef sequence<double> row;
    typedef dsequence<row> matrix;
    typedef dsequence<double, 1024, BLOCK, CONCENTRATED(2)> dvec;
    interface solver {
      void solve(in matrix A, in dvec B, out dvec X);
      oneway void note(in string msg);
    };
  )");
  ASSERT_EQ(spec.definitions.size(), 8u);
  EXPECT_EQ(spec.definitions[1].const_def.int_value, 128 * 128 + 2);

  const auto* iface = spec.find_interface("solver");
  ASSERT_NE(iface, nullptr);
  ASSERT_EQ(iface->ops.size(), 2u);
  EXPECT_TRUE(iface->ops[1].oneway);
  EXPECT_TRUE(iface->ops[0].has_dist_out());

  // dvec: bound 1024, client BLOCK, server CONCENTRATED(2)
  const auto& dvec = spec.definitions[6].typedef_def;
  const Type* d = dvec.type->resolved();
  EXPECT_EQ(d->bound, 1024);
  EXPECT_EQ(d->client_spec.kind, dist::DistKind::kBlock);
  EXPECT_EQ(d->server_spec.kind, dist::DistKind::kConcentrated);
  EXPECT_EQ(d->server_spec.root, 2);
}

TEST(IdlParser, DistributionsWithoutBound) {
  Spec spec = parse("typedef dsequence<double, CYCLIC(8), BLOCK> v;");
  const Type* d = spec.definitions[0].typedef_def.type->resolved();
  EXPECT_EQ(d->bound, -1);
  EXPECT_EQ(d->client_spec.kind, dist::DistKind::kCyclic);
  EXPECT_EQ(d->client_spec.block_size, 8u);
  EXPECT_EQ(d->server_spec.kind, dist::DistKind::kBlock);
}

TEST(IdlParser, InterfaceInheritance) {
  Spec spec = parse(R"(
    interface a { void f(); };
    interface b : a { void g(); };
  )");
  EXPECT_EQ(spec.find_interface("b")->base, "a");
}

TEST(IdlParser, PragmaAttachesMappingsToNextTypedef) {
  Spec spec = parse(R"(
    #pragma HPC++:vector
    #pragma POOMA:field
    typedef dsequence<double> field;
  )");
  const Type* d = spec.definitions[0].typedef_def.type->resolved();
  ASSERT_EQ(d->mappings.size(), 2u);
  EXPECT_EQ(d->mappings[0].package, "HPC++");
  EXPECT_EQ(d->mappings[0].structure, "vector");
  EXPECT_EQ(d->mappings[1].package, "POOMA");
}

struct BadCase {
  const char* name;
  const char* src;
};

class IdlRejectsTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(IdlRejectsTest, SemanticErrorsAreDiagnosed) {
  EXPECT_THROW(parse(GetParam().src), IdlError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IdlRejectsTest,
    ::testing::Values(
        BadCase{"oneway_with_out", "interface x { oneway void f(out long v); };"},
        BadCase{"oneway_nonvoid", "interface x { oneway long f(); };"},
        BadCase{"dseq_return",
                "typedef dsequence<double> v; interface x { v f(); };"},
        BadCase{"dseq_inout",
                "typedef dsequence<double> v; interface x { void f(inout v a); };"},
        BadCase{"nested_dseq", "typedef dsequence<dsequence<double>> v;"},
        BadCase{"dseq_struct_member",
                "typedef dsequence<double> v; struct s { v field; };"},
        BadCase{"unknown_type", "interface x { void f(in nosuch v); };"},
        BadCase{"duplicate_op", "interface x { void f(); void f(); };"},
        BadCase{"duplicate_inherited_op",
                "interface a { void f(); }; interface b : a { void f(); };"},
        BadCase{"unknown_base", "interface b : nosuch { };"},
        BadCase{"redefinition", "struct s { long a; }; struct s { long b; };"},
        BadCase{"dangling_pragma", "#pragma HPC++:vector\ninterface x { };"},
        BadCase{"pragma_on_plain_typedef",
                "#pragma HPC++:vector\ntypedef sequence<double> v;"},
        BadCase{"zero_bound", "typedef dsequence<double, 0> v;"},
        BadCase{"void_param", "interface x { void f(in void v); };"},
        BadCase{"missing_semicolon", "interface x { void f() };"},
        BadCase{"const_div_zero", "const long a = 1 / 0;"},
        BadCase{"empty_struct", "struct s { };"}),
    [](const ::testing::TestParamInfo<BadCase>& info) { return info.param.name; });

TEST(IdlCodegen, EmitsProxySkeletonAndBothStubs) {
  const std::string code = gen(R"(
    typedef dsequence<double> vec;
    interface calc {
      double dot(in vec a, in vec b);
      oneway void note(in string msg);
    };
  )");
  EXPECT_NE(code.find("class POA_calc : public pardis::core::ServantBase"),
            std::string::npos);
  EXPECT_NE(code.find("class calc : public pardis::core::ProxyRoot"), std::string::npos);
  EXPECT_NE(code.find("dot_nb("), std::string::npos);
  // The single-client mapping (second stub with non-distributed args).
  EXPECT_NE(code.find("const std::vector<pardis::Double>& a"), std::string::npos);
  // Oneway ops get no _nb variant and no reply wait.
  EXPECT_EQ(code.find("note_nb("), std::string::npos);
  EXPECT_NE(code.find("using vec_var"), std::string::npos);
}

TEST(IdlCodegen, IdempotentOpsWrapBlockingStubInRetry) {
  const std::string code = gen(R"(
    interface svc {
      #pragma idempotent
      long get(in long k);
      long put(in long k);
    };
  )");
  EXPECT_NE(code.find("pardis::ft::with_retry"), std::string::npos);
  EXPECT_NE(code.find("#include \"ft/ft.hpp\""), std::string::npos);
  // The idempotent op retries unconditionally; the non-idempotent op
  // gets the exactly-once conditional path — two with_retry sites.
  std::size_t n = 0;
  for (std::size_t pos = code.find("with_retry("); pos != std::string::npos;
       pos = code.find("with_retry(", pos + 1))
    ++n;
  EXPECT_EQ(n, 2u);
}

TEST(IdlCodegen, NonIdempotentOpsRetryOnlyBehindExactlyOnce) {
  const std::string code = gen(R"(
    interface svc { long get(in long k); };
  )");
  // A non-idempotent op may only be retried against a durable binding,
  // where the sibling deduplicates by request identity: the stub
  // guards its with_retry on _binding()->exactly_once() and otherwise
  // takes the classic single-invoke path.
  EXPECT_NE(code.find("_binding()->exactly_once()"), std::string::npos);
  EXPECT_NE(code.find("with_retry"), std::string::npos);
  EXPECT_NE(code.find("ft/ft.hpp"), std::string::npos);
}

TEST(IdlCodegen, OnewayOnlyInterfacesSkipFtInclude) {
  const std::string code = gen(R"(
    interface svc { oneway void ping(in long k); };
  )");
  // Oneways have no reply to retry for; nothing in the interface
  // touches the retry layer, so the include stays out.
  EXPECT_EQ(code.find("with_retry"), std::string::npos);
  EXPECT_EQ(code.find("ft/ft.hpp"), std::string::npos);
}

TEST(IdlCodegen, ServerSpecsPublishedInDefaultArgSpecs) {
  const std::string code = gen(R"(
    typedef dsequence<double, 64, BLOCK, CONCENTRATED> vec;
    interface s { void f(in vec a); };
  )");
  EXPECT_NE(code.find("_m[\"f\"] = {pardis::core::DistSpec::concentrated(0)}"),
            std::string::npos);
}

TEST(IdlCodegen, PackageMappingSelectsNativeTypes) {
  const std::string src = R"(
    #pragma HPC++:vector
    #pragma POOMA:field
    typedef dsequence<double> field;
    interface viz { void show(in field f); };
  )";
  const std::string plain = gen(src);
  EXPECT_NE(plain.find("using field = pardis::dist::DSequence<pardis::Double>"),
            std::string::npos);

  CodegenOptions hpcxx;
  hpcxx.packages.insert("HPC++");
  const std::string mapped = gen(src, hpcxx);
  EXPECT_NE(mapped.find("using field = pardis::pstl::DistributedVector<pardis::Double>"),
            std::string::npos);
  EXPECT_NE(mapped.find("#include \"pstl/mapping.hpp\""), std::string::npos);
  EXPECT_NE(mapped.find("pardis::pstl::dseq_view"), std::string::npos);

  CodegenOptions pooma;
  pooma.packages.insert("POOMA");
  const std::string mapped2 = gen(src, pooma);
  EXPECT_NE(mapped2.find("using field = pardis::pooma::Field2D<pardis::Double>"),
            std::string::npos);
}

TEST(IdlCodegen, InheritanceChainsDispatchAndSpecs) {
  const std::string code = gen(R"(
    interface a { void f(); };
    interface b : a { void g(); };
  )");
  EXPECT_NE(code.find("class POA_b : public POA_a"), std::string::npos);
  EXPECT_NE(code.find("class b : public a"), std::string::npos);
  EXPECT_NE(code.find("POA_a::_dispatch(_inv);"), std::string::npos);
}

TEST(IdlCodegen, StructAndEnumGetCdrTraits) {
  const std::string code = gen(
      "enum color { RED, GREEN }; struct rec { long id; color c; sequence<long> xs; };",
      CodegenOptions{.ns = "demo", .packages = {}});
  EXPECT_NE(code.find("struct pardis::CdrTraits<demo::rec>"), std::string::npos);
  EXPECT_NE(code.find("struct pardis::CdrTraits<demo::color>"), std::string::npos);
  EXPECT_NE(code.find("bad color enumerator"), std::string::npos);
}

class IdlIncludeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "pardis_idl_inc";
    std::filesystem::create_directories(dir_ + "/sub");
  }
  void write(const std::string& rel, const std::string& text) {
    std::ofstream out(dir_ + "/" + rel);
    out << text;
  }
  std::string dir_;
};

TEST_F(IdlIncludeTest, SplicesRelativeIncludesOnce) {
  write("types.idl", "typedef sequence<double> row;\n");
  write("main.idl",
        "#include \"types.idl\"\n#include \"types.idl\"\n"
        "interface s { void f(in row r); };\n");
  const std::string src = load_idl_source(dir_ + "/main.idl");
  // once-only: the typedef appears a single time and the result parses
  EXPECT_EQ(src.find("typedef sequence<double> row"),
            src.rfind("typedef sequence<double> row"));
  Spec spec = Parser(src, "main.idl").parse();
  EXPECT_NE(spec.find_interface("s"), nullptr);
}

TEST_F(IdlIncludeTest, SearchesIncludeDirs) {
  write("sub/common.idl", "const long N = 9;\n");
  write("main.idl", "#include \"common.idl\"\ntypedef dsequence<double, N> v;\n");
  EXPECT_THROW(load_idl_source(dir_ + "/main.idl"), IdlError);
  const std::string src = load_idl_source(dir_ + "/main.idl", {dir_ + "/sub"});
  Spec spec = Parser(src, "main.idl").parse();
  EXPECT_EQ(spec.definitions[1].typedef_def.type->resolved()->bound, 9);
}

TEST_F(IdlIncludeTest, OnceOnlySemanticsBreakCycles) {
  write("a.idl", "#include \"b.idl\"\nconst long A = 1;\n");
  write("b.idl", "#include \"a.idl\"\nconst long B = 2;\n");
  const std::string src = load_idl_source(dir_ + "/a.idl");
  Spec spec = Parser(src, "a.idl").parse();
  EXPECT_EQ(spec.definitions.size(), 2u);  // both consts, each once
}

TEST_F(IdlIncludeTest, MissingFileDiagnosed) {
  write("main.idl", "#include \"nosuch.idl\"\n");
  try {
    load_idl_source(dir_ + "/main.idl");
    FAIL() << "expected IdlError";
  } catch (const IdlError& e) {
    EXPECT_NE(std::string(e.what()).find("nosuch.idl"), std::string::npos);
  }
}

}  // namespace
}  // namespace pardis::idl
