// Run-time system interface: tagged point-to-point messaging.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/cdr.hpp"
#include "rts/thread_comm.hpp"

namespace pardis::rts {
namespace {

ByteBuffer payload_of(int v) { return cdr_encode(v); }
int value_of(const RtsMessage& m) { return cdr_decode<int>(m.payload.view()); }

TEST(ThreadCommTest, SendRecvSameThread) {
  ThreadCommGroup group(2);
  group.comm(0).send(1, 7, payload_of(42));
  RtsMessage m = group.comm(1).recv(0, 7);
  EXPECT_EQ(m.source, 0);
  EXPECT_EQ(m.tag, 7);
  EXPECT_EQ(value_of(m), 42);
}

TEST(ThreadCommTest, WildcardSourceAndTag) {
  ThreadCommGroup group(3);
  group.comm(2).send(0, 5, payload_of(1));
  group.comm(1).send(0, 9, payload_of(2));
  RtsMessage a = group.comm(0).recv(kAnySource, 9);
  EXPECT_EQ(a.source, 1);
  RtsMessage b = group.comm(0).recv(2, kAnyTag);
  EXPECT_EQ(b.tag, 5);
}

TEST(ThreadCommTest, FifoPerSourceAndTag) {
  ThreadCommGroup group(2);
  for (int i = 0; i < 100; ++i) group.comm(0).send(1, 3, payload_of(i));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(value_of(group.comm(1).recv(0, 3)), i);
  }
}

TEST(ThreadCommTest, TagMatchingSkipsNonMatching) {
  ThreadCommGroup group(2);
  group.comm(0).send(1, 1, payload_of(10));
  group.comm(0).send(1, 2, payload_of(20));
  // Receive tag 2 first even though tag 1 arrived earlier.
  EXPECT_EQ(value_of(group.comm(1).recv(0, 2)), 20);
  EXPECT_EQ(value_of(group.comm(1).recv(0, 1)), 10);
}

TEST(ThreadCommTest, UserSendRejectsReservedTags) {
  ThreadCommGroup group(2);
  EXPECT_THROW(group.comm(0).send(1, kTagOrbRequest, ByteBuffer{}), BadTag);
  EXPECT_THROW(group.comm(0).send(1, kReservedTagBase, ByteBuffer{}), BadTag);
  EXPECT_THROW(group.comm(0).send(1, -5, ByteBuffer{}), BadTag);
  // Reserved-path send is allowed for internal subsystems.
  EXPECT_NO_THROW(group.comm(0).send_reserved(1, kTagOrbRequest, ByteBuffer{}));
}

TEST(ThreadCommTest, SendToInvalidRankThrows) {
  ThreadCommGroup group(2);
  EXPECT_THROW(group.comm(0).send(5, 1, ByteBuffer{}), BadParam);
  EXPECT_THROW(group.comm(0).send(-1, 1, ByteBuffer{}), BadParam);
}

TEST(ThreadCommTest, TryRecvAndProbe) {
  ThreadCommGroup group(2);
  EXPECT_FALSE(group.comm(1).try_recv().has_value());
  EXPECT_FALSE(group.comm(1).probe().has_value());
  group.comm(0).send(1, 4, payload_of(5));
  auto info = group.comm(1).probe(kAnySource, kAnyTag);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->source, 0);
  EXPECT_EQ(info->tag, 4);
  EXPECT_EQ(info->size, cdr_encode(5).size());
  // Probe does not consume.
  auto msg = group.comm(1).try_recv(0, 4);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(value_of(*msg), 5);
  EXPECT_FALSE(group.comm(1).try_recv().has_value());
}

TEST(ThreadCommTest, BlockingRecvWakesOnLateSend) {
  ThreadCommGroup group(2);
  int got = -1;
  std::thread receiver([&] { got = value_of(group.comm(1).recv(0, 2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  group.comm(0).send(1, 2, payload_of(77));
  receiver.join();
  EXPECT_EQ(got, 77);
}

TEST(ThreadCommTest, ManyToOneStress) {
  constexpr int kSenders = 8;
  constexpr int kEach = 200;
  ThreadCommGroup group(kSenders + 1);
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s)
    senders.emplace_back([&group, s] {
      for (int i = 0; i < kEach; ++i) group.comm(s + 1).send(0, s, payload_of(i));
    });
  // Per-sender FIFO must hold even under concurrency.
  std::vector<int> next(kSenders, 0);
  for (int n = 0; n < kSenders * kEach; ++n) {
    RtsMessage m = group.comm(0).recv();
    const int s = m.source - 1;
    EXPECT_EQ(value_of(m), next[s]);
    ++next[s];
  }
  for (auto& t : senders) t.join();
}

TEST(ThreadCommTest, SimTimestampsCarriedAndMerged) {
  sim::HostModel host{.name = "H",
                      .gflops = 1.0,
                      .intra_latency_s = 0.5,
                      .intra_bandwidth_bps = 1e9};
  ThreadCommGroup group(2, &host);

  sim::SimClock sender_clock, receiver_clock;
  {
    sim::ClockBinding bind(sender_clock);
    sim::charge_seconds(3.0);
    group.comm(0).send(1, 1, ByteBuffer{});
  }
  {
    sim::ClockBinding bind(receiver_clock);
    RtsMessage m = group.comm(1).recv(0, 1);
    // receiver = max(0, sender 3.0 + intra latency 0.5)
    EXPECT_DOUBLE_EQ(m.sim_time, 3.5);
    EXPECT_DOUBLE_EQ(receiver_clock.now(), 3.5);
  }
}

TEST(ThreadCommTest, ZeroAndSingleRankGroups) {
  EXPECT_THROW(ThreadCommGroup bad(0), BadParam);
  ThreadCommGroup solo(1);
  solo.comm(0).send(0, 1, payload_of(9));  // self-send is legal
  EXPECT_EQ(value_of(solo.comm(0).recv()), 9);
}

}  // namespace
}  // namespace pardis::rts
