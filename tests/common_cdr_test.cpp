// CDR marshaling: alignment, round-trips, byte order, error paths.
#include "common/cdr.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

namespace pardis {
namespace {

TEST(CdrWriter, AlignsPrimitivesToNaturalBoundaries) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_octet(1);      // offset 0
  w.write_ulong(2);      // pads to 4
  w.write_octet(3);      // offset 8
  w.write_double(4.0);   // pads to 16
  EXPECT_EQ(buf.size(), 24u);

  CdrReader r(buf.view());
  EXPECT_EQ(r.read_octet(), 1);
  EXPECT_EQ(r.read_ulong(), 2u);
  EXPECT_EQ(r.read_octet(), 3);
  EXPECT_EQ(r.read_double(), 4.0);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CdrWriter, AlignmentIsRelativeToWriterBase) {
  ByteBuffer buf;
  buf.grow(8);  // pre-existing 8-byte-aligned header
  CdrWriter w(buf);
  w.write_double(1.5);
  EXPECT_EQ(buf.size(), 16u);  // no padding needed after aligned base
  CdrReader r(buf.view().subspan(8));
  EXPECT_EQ(r.read_double(), 1.5);
}

TEST(CdrRoundTrip, AllPrimitiveTypes) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_bool(true);
  w.write_octet(0xAB);
  w.write_short(-1234);
  w.write_ushort(56789);
  w.write_long(-123456789);
  w.write_ulong(3456789012u);
  w.write_longlong(-1234567890123456789LL);
  w.write_ulonglong(12345678901234567890ULL);
  w.write_float(3.25F);
  w.write_double(-2.718281828459045);

  CdrReader r(buf.view());
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read_octet(), 0xAB);
  EXPECT_EQ(r.read_short(), -1234);
  EXPECT_EQ(r.read_ushort(), 56789);
  EXPECT_EQ(r.read_long(), -123456789);
  EXPECT_EQ(r.read_ulong(), 3456789012u);
  EXPECT_EQ(r.read_longlong(), -1234567890123456789LL);
  EXPECT_EQ(r.read_ulonglong(), 12345678901234567890ULL);
  EXPECT_EQ(r.read_float(), 3.25F);
  EXPECT_EQ(r.read_double(), -2.718281828459045);
}

TEST(CdrRoundTrip, Strings) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_string("");
  w.write_string("hello PARDIS");
  w.write_string(std::string(1000, 'x'));

  CdrReader r(buf.view());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), "hello PARDIS");
  EXPECT_EQ(r.read_string(), std::string(1000, 'x'));
}

TEST(CdrRoundTrip, PrimitiveSequenceBulk) {
  std::vector<double> values(257);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = 0.5 * static_cast<double>(i);
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_octet(7);  // force interesting alignment before the sequence
  w.write_prim_seq<double>(values);

  CdrReader r(buf.view());
  EXPECT_EQ(r.read_octet(), 7);
  EXPECT_EQ(r.read_prim_seq<double>(), values);
}

TEST(CdrRoundTrip, PrimitiveSequenceIntoCallerStorage) {
  std::vector<float> values{1.5F, -2.5F, 3.5F};
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_prim_seq<float>(values);

  std::vector<float> out(3);
  CdrReader r(buf.view());
  r.read_prim_seq_into<float>(out);
  EXPECT_EQ(out, values);
}

TEST(CdrReader, PrimSeqIntoSizeMismatchThrows) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_prim_seq<int>(std::vector<int>{1, 2, 3});
  std::vector<int> out(2);
  CdrReader r(buf.view());
  EXPECT_THROW(r.read_prim_seq_into<int>(out), MarshalError);
}

TEST(CdrByteOrder, ReaderSwapsWhenProducerOrderDiffers) {
  // Build a big-endian (or generally opposite-endian) encoding by hand.
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_ulong(0x01020304u);
  // Reinterpret the same bytes as produced by the opposite byte order.
  CdrReader r(buf.view(), !kNativeLittleEndian);
  EXPECT_EQ(r.read_ulong(), 0x04030201u);
}

TEST(CdrByteOrder, SwappedDoubleSurvivesRoundTrip) {
  const double value = 6.02214076e23;
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_double(value);
  // Manually byte-swap the encoded payload, then read with the
  // opposite-endian flag: the reader must undo the swap.
  ByteBuffer swapped = buf.clone();
  auto bytes = swapped.mutable_view();
  for (std::size_t i = 0; i < 4; ++i) std::swap(bytes[i], bytes[7 - i]);
  CdrReader r(swapped.view(), !kNativeLittleEndian);
  EXPECT_EQ(r.read_double(), value);
}

TEST(CdrReader, UnderrunThrowsMarshalError) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_ushort(7);
  CdrReader r(buf.view());
  EXPECT_EQ(r.read_ushort(), 7);
  EXPECT_THROW(r.read_ulong(), MarshalError);
}

TEST(CdrReader, StringWithoutNulThrows) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_ulong(3);
  const char bad[3] = {'a', 'b', 'c'};  // missing terminator
  buf.append_raw(bad, sizeof(bad));
  CdrReader r(buf.view());
  EXPECT_THROW(r.read_string(), MarshalError);
}

TEST(CdrReader, ZeroLengthStringEncodingThrows) {
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_ulong(0);
  CdrReader r(buf.view());
  EXPECT_THROW(r.read_string(), MarshalError);
}

TEST(CdrTraitsTest, NestedDynamicallySizedSequences) {
  // The paper (§4.1) stresses automatically-generated marshaling for
  // dynamically-sized nested elements (matrix = dsequence of rows).
  std::vector<std::vector<double>> matrix{
      {1.0}, {2.0, 3.0, 4.0}, {}, {5.0, 6.0}};
  ByteBuffer buf = cdr_encode(matrix);
  auto out = cdr_decode<std::vector<std::vector<double>>>(buf.view());
  EXPECT_EQ(out, matrix);
}

TEST(CdrTraitsTest, VectorOfStrings) {
  std::vector<std::string> v{"", "alpha", std::string(300, 'q')};
  EXPECT_EQ(cdr_decode<std::vector<std::string>>(cdr_encode(v).view()), v);
}

// Property-style sweep: random payload vectors of many sizes round-trip.
class CdrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CdrPropertyTest, RandomDoubleVectorRoundTrips) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> size_dist(0, 4096);
  std::uniform_real_distribution<double> val(-1e9, 1e9);
  std::vector<double> v(size_dist(rng));
  for (auto& x : v) x = val(rng);
  EXPECT_EQ(cdr_decode<std::vector<double>>(cdr_encode(v).view()), v);
}

TEST_P(CdrPropertyTest, RandomNestedSequenceRoundTrips) {
  std::mt19937_64 rng(GetParam() * 7919);
  std::uniform_int_distribution<int> outer(0, 16);
  std::uniform_int_distribution<int> inner(0, 64);
  std::uniform_int_distribution<int> val(-1000000, 1000000);
  std::vector<std::vector<Long>> v(outer(rng));
  for (auto& row : v) {
    row.resize(inner(rng));
    for (auto& x : row) x = val(rng);
  }
  EXPECT_EQ(cdr_decode<std::vector<std::vector<Long>>>(cdr_encode(v).view()), v);
}

TEST_P(CdrPropertyTest, MixedRecordRoundTripsAtRandomAlignment) {
  std::mt19937_64 rng(GetParam() * 104729);
  std::uniform_int_distribution<int> pad(0, 7);
  const int lead = pad(rng);
  ByteBuffer buf;
  CdrWriter w(buf);
  for (int i = 0; i < lead; ++i) w.write_octet(static_cast<Octet>(i));
  w.write_double(1.25);
  w.write_short(-2);
  w.write_string("mix");
  w.write_ulonglong(99);

  CdrReader r(buf.view());
  for (int i = 0; i < lead; ++i) EXPECT_EQ(r.read_octet(), static_cast<Octet>(i));
  EXPECT_EQ(r.read_double(), 1.25);
  EXPECT_EQ(r.read_short(), -2);
  EXPECT_EQ(r.read_string(), "mix");
  EXPECT_EQ(r.read_ulonglong(), 99u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdrPropertyTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace pardis
