// Fuzz harness: the WAL recovery scanner against arbitrary file bodies.
//
// scan_records is the exact parser Log's constructor runs over a
// reopened file, factored pure so it can be driven without a
// filesystem. Contract under test: never crashes, never allocates from
// an unvalidated length, and its results stay internally consistent —
// valid_bytes covers exactly the returned records, and a scan that
// stops early always reports what it dropped.
#include <cstddef>
#include <cstdint>

#include "common/types.hpp"
#include "wal/wal.hpp"

using namespace pardis;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const Octet> body(reinterpret_cast<const Octet*>(data), size);
  const wal::ScanResult res = wal::scan_records(body);

  if (res.valid_bytes > size) __builtin_trap();
  // Each frame is a 17-byte header plus its payload.
  std::uint64_t covered = 0;
  for (const wal::Record& rec : res.records) covered += 17 + rec.payload.size();
  if (covered != res.valid_bytes) __builtin_trap();
  // A scan that did not consume everything must say what it dropped.
  if (res.valid_bytes < size && res.dropped == 0) __builtin_trap();
  if (res.dropped > 0 && res.first_dropped_lsn == 0) {
    // first_dropped_lsn = max_lsn + 1 can only be 0 on ULongLong wrap,
    // which a fuzz input reaches by forging a valid frame with lsn
    // 2^64-1 — tolerate exactly that case, trap on everything else.
    bool wrapped = false;
    for (const wal::Record& rec : res.records)
      if (rec.lsn == ~0ull) wrapped = true;
    if (!wrapped) __builtin_trap();
  }
  return 0;
}
