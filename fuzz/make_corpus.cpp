// Seed-corpus generator for the fuzz harnesses. Emits structurally
// valid inputs built with the *real* marshal code, so every seed walks
// the full decode path before the mutator starts bending it — the
// cheapest way to reach deep states without coverage feedback.
//
// Usage: make_corpus <corpus-root>
// Writes <root>/fuzz_cdr/*, <root>/fuzz_piop_headers/*,
// <root>/fuzz_wal_record/*. Deterministic: re-running produces
// identical bytes (seeds are committed, so diffs must be meaningful).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/cdr.hpp"
#include "common/crc.hpp"
#include "core/protocol.hpp"
#include "core/wire.hpp"
#include "transport/wire_guard.hpp"

using namespace pardis;

namespace {

void emit(const std::filesystem::path& dir, const std::string& name,
          std::uint8_t mode, std::uint8_t knobs, const ByteBuffer& payload) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.put(static_cast<char>(mode));
  out.put(static_cast<char>(knobs));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
}

void emit_raw(const std::filesystem::path& dir, const std::string& name,
              const ByteBuffer& payload) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
}

ByteBuffer wal_frame(ULongLong lsn, Octet type, std::span<const Octet> payload) {
  // [len][crc][lsn][type][payload], crc over [lsn][type][payload] —
  // must match wal.cpp's frame layout byte for byte.
  ULong state = crc32_begin();
  state = crc32_update(state, {reinterpret_cast<const Octet*>(&lsn), sizeof(lsn)});
  state = crc32_update(state, {&type, sizeof(type)});
  state = crc32_update(state, payload);
  const ULong crc = crc32_final(state);
  const ULong len = static_cast<ULong>(payload.size());
  ByteBuffer frame;
  frame.append_raw(&len, sizeof(len));
  frame.append_raw(&crc, sizeof(crc));
  frame.append_raw(&lsn, sizeof(lsn));
  frame.append_raw(&type, sizeof(type));
  frame.append(payload);
  return frame;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_corpus <corpus-root>\n");
    return 2;
  }
  const std::filesystem::path root = argv[1];

  // --- fuzz_cdr: [mode][endian] + one valid encoding per mode -------------
  {
    const auto dir = root / "fuzz_cdr";
    emit(dir, "string", 0, 1, cdr_encode(std::string("hello, wire")));
    emit(dir, "prim_seq", 1, 1,
         cdr_encode(std::vector<ULong>{1, 2, 3, 0xDEADBEEFu, 0xFFFFFFFFu}));
    emit(dir, "string_seq", 2, 1,
         cdr_encode(std::vector<std::string>{"a", "bb", "ccc"}));
    emit(dir, "nested_seq", 3, 1,
         cdr_encode(std::vector<std::vector<std::vector<ULong>>>{
             {{1, 2}, {3}}, {{4, 5, 6}}}));
    {
      ByteBuffer buf;
      CdrWriter w(buf);
      w.write_octet(7);
      w.write_short(-42);
      w.write_ulong(123456789u);
      w.write_double(3.14159);
      w.write_ulonglong(0x0123456789ABCDEFull);
      w.write_string("soup");
      emit(dir, "prim_soup", 4, 1, buf);
    }
    {
      ByteBuffer buf;
      CdrWriter w(buf);
      w.write_ulong(8);
      for (int i = 0; i < 12; ++i) w.write_octet(static_cast<Octet>(i));
      emit(dir, "bytes_trim", 5, 1, buf);
    }
  }

  // --- fuzz_piop_headers: [mode][strict|endian<<1] + header bytes ----------
  {
    const auto dir = root / "fuzz_piop_headers";
    {
      core::RequestHeader h;
      h.request_id = RequestId{42};
      h.binding_id = 7;
      h.seq_no = 3;
      h.object_id = ObjectId{99};
      h.operation = "compute";
      h.client_rank = 1;
      h.client_size = 4;
      h.deadline_ms = 250;
      ByteBuffer buf;
      CdrWriter w(buf);
      h.marshal(w);
      emit(dir, "request_plain", 0, 3, buf);

      h.crc = true;
      ByteBuffer sealed;
      CdrWriter ws(sealed);
      h.marshal(ws);
      wire::append_crc(sealed);
      emit(dir, "request_crc", 0, 3, sealed);
    }
    {
      core::ReplyHeader h;
      h.request_id = RequestId{42};
      h.server_rank = 2;
      h.server_size = 4;
      h.status = core::ReplyStatus::kSystemException;
      h.error_code = ErrorCode::kTimeout;
      h.error_message = "deadline expired";
      ByteBuffer buf;
      CdrWriter w(buf);
      h.marshal(w);
      emit(dir, "reply_error", 1, 3, buf);

      core::ReplyHeader ok;
      ok.request_id = RequestId{43};
      ok.crc = true;
      ByteBuffer sealed;
      CdrWriter ws(sealed);
      ok.marshal(ws);
      wire::append_crc(sealed);
      emit(dir, "reply_crc", 1, 3, sealed);
    }
    {
      wire::Hello hello;
      hello.features = transport::kFeatureFrameCrc;
      ByteBuffer buf;
      CdrWriter w(buf);
      hello.marshal(w);
      emit(dir, "hello", 2, 3, buf);
    }
  }

  // --- fuzz_wal_record: raw log bodies ------------------------------------
  {
    const auto dir = root / "fuzz_wal_record";
    const Octet p1[] = {1, 2, 3, 4, 5};
    const Octet p2[] = {0xFF, 0x00, 0xAB};
    ByteBuffer two;
    two.append(wal_frame(1, 1, p1).view());
    two.append(wal_frame(2, 2, p2).view());
    emit_raw(dir, "two_records", two);

    ByteBuffer torn = two.clone();
    ByteBuffer half = wal_frame(3, 1, p1);
    torn.append(half.view().first(half.size() / 2));
    emit_raw(dir, "torn_tail", torn);

    ByteBuffer corrupt = two.clone();
    corrupt.mutable_view()[10] ^= 0x40;  // break record 1's frame
    emit_raw(dir, "corrupt_first", corrupt);

    ByteBuffer empty_payload = wal_frame(9, 3, {});
    emit_raw(dir, "empty_payload", empty_payload);
  }

  std::fprintf(stderr, "corpus written under %s\n", root.string().c_str());
  return 0;
}
