// Fuzz harness: PIOP header demarshalling (RequestHeader, ReplyHeader,
// Hello) against arbitrary bytes, in both strict and tolerant modes
// and both byte orders.
//
// Contract under test: every decode either succeeds or throws a
// pardis::SystemException. Additionally, when a RequestHeader carries
// the CRC flag and decodes successfully, the trailer has provably been
// trimmed — the body the caller would extract never contains it.
//
// Input layout: [mode][knobs] payload...
#include <cstddef>
#include <cstdint>

#include "common/cdr.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "core/protocol.hpp"
#include "core/wire.hpp"
#include "transport/wire_guard.hpp"

using namespace pardis;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 2) return 0;
  const std::uint8_t mode = data[0] % 3;
  wire::set_strict((data[1] & 1) != 0 ? 1 : 0);
  const bool little = (data[1] & 2) != 0;
  const std::span<const Octet> body(reinterpret_cast<const Octet*>(data + 2), size - 2);
  CdrReader r(body, little);
  try {
    switch (mode) {
      case 0: {
        const core::RequestHeader h = core::RequestHeader::unmarshal(r);
        if (h.client_rank >= h.client_size) __builtin_trap();  // validated invariant
        if (r.rest().size() > body.size()) __builtin_trap();
        break;
      }
      case 1: {
        const core::ReplyHeader h = core::ReplyHeader::unmarshal(r);
        if (h.server_rank >= h.server_size) __builtin_trap();
        break;
      }
      default:
        wire::Hello::unmarshal(r).validate();
        break;
    }
  } catch (const SystemException&) {
    // Rejecting hostile input is the contract.
  }
  wire::set_strict(-1);
  return 0;
}
