// Standalone driver for the fuzz harnesses when the toolchain has no
// libFuzzer (gcc builds). Two jobs:
//
//   1. Replay: every file (or every file inside a directory) passed on
//      the command line is fed to LLVMFuzzerTestOneInput once — the
//      committed seed corpus becomes a deterministic regression test.
//   2. Mutate: with --seconds=N, a seeded splitmix64 mutation loop
//      keeps flipping/truncating/extending/splicing corpus entries for
//      N wall-clock seconds. Deterministic per (--seed, corpus), so a
//      CI failure reproduces locally.
//
// Under clang the same harness sources link against -fsanitize=fuzzer
// instead (PARDIS_HAVE_LIBFUZZER), and this file is not compiled.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// One random structural mutation. The menu mirrors what libFuzzer's
/// default mutator reaches most often against length-prefixed formats.
void mutate(std::vector<std::uint8_t>& buf, std::uint64_t& rng) {
  if (buf.empty()) {
    buf.push_back(static_cast<std::uint8_t>(splitmix64(rng)));
    return;
  }
  switch (splitmix64(rng) % 6) {
    case 0: {  // flip one bit
      const std::uint64_t bit = splitmix64(rng) % (buf.size() * 8);
      buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      break;
    }
    case 1:  // overwrite one byte
      buf[splitmix64(rng) % buf.size()] = static_cast<std::uint8_t>(splitmix64(rng));
      break;
    case 2: {  // overwrite 4 aligned bytes with an interesting length
      static const std::uint32_t kMagic[] = {0,          1,          0x7FFFFFFFu,
                                             0x80000000u, 0xFFFFFFFFu, 0x10000u};
      const std::uint32_t v = kMagic[splitmix64(rng) % (sizeof(kMagic) / sizeof(kMagic[0]))];
      const std::size_t at = (buf.size() > 4) ? (splitmix64(rng) % (buf.size() - 3)) : 0;
      if (at + 4 <= buf.size()) std::memcpy(buf.data() + at, &v, 4);
      break;
    }
    case 3:  // truncate
      buf.resize(splitmix64(rng) % buf.size());
      break;
    case 4: {  // insert a random byte
      const std::size_t at = splitmix64(rng) % (buf.size() + 1);
      buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(at),
                 static_cast<std::uint8_t>(splitmix64(rng)));
      break;
    }
    default: {  // duplicate a chunk onto the end (grows nesting/counts)
      const std::size_t n = 1 + splitmix64(rng) % buf.size();
      const std::size_t at = splitmix64(rng) % (buf.size() - n + 1);
      buf.insert(buf.end(), buf.begin() + static_cast<std::ptrdiff_t>(at),
                 buf.begin() + static_cast<std::ptrdiff_t>(at + n));
      break;
    }
  }
  if (buf.size() > (1u << 16)) buf.resize(1u << 16);  // keep iterations fast
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  long seconds = 0;
  std::uint64_t seed = 0x9D15D5EB85C0Fu;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::strtol(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (std::filesystem::is_directory(arg)) {
      for (const auto& e : std::filesystem::directory_iterator(arg))
        if (e.is_regular_file()) inputs.push_back(e.path());
    } else {
      inputs.push_back(arg);
    }
  }
  std::sort(inputs.begin(), inputs.end());  // directory order is not stable

  std::vector<std::vector<std::uint8_t>> corpus;
  for (const auto& p : inputs) {
    corpus.push_back(read_file(p));
    const auto& buf = corpus.back();
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
  }
  std::fprintf(stderr, "replayed %zu corpus entries\n", corpus.size());

  if (seconds > 0) {
    if (corpus.empty()) corpus.push_back({});
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
    std::uint64_t iterations = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      // Time is only sampled per outer round; the inner loop keeps the
      // clock out of the hot path.
      for (int i = 0; i < 512; ++i) {
        std::vector<std::uint8_t> buf = corpus[splitmix64(seed) % corpus.size()];
        const std::uint64_t n_mut = 1 + splitmix64(seed) % 4;
        for (std::uint64_t m = 0; m < n_mut; ++m) mutate(buf, seed);
        LLVMFuzzerTestOneInput(buf.data(), buf.size());
        ++iterations;
      }
    }
    std::fprintf(stderr, "mutated %llu inputs in %ld s\n",
                 static_cast<unsigned long long>(iterations), seconds);
  }
  return 0;
}
