// Fuzz harness: the hardened CdrReader against arbitrary bytes.
//
// Contract under test: whatever the input, every decode either
// succeeds or throws a pardis::SystemException (in practice a located
// DecodeError). Crashing, over-allocating from a hostile length
// prefix, or reading out of bounds is a finding — ASan/UBSan (and the
// container-size sanity trap below) turn those into failures.
//
// Input layout: [mode][endian] payload...
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cdr.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

using namespace pardis;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 2) return 0;
  const std::uint8_t mode = data[0] % 6;
  const bool little = (data[1] & 1) != 0;
  const std::span<const Octet> body(reinterpret_cast<const Octet*>(data + 2), size - 2);
  CdrReader r(body, little);
  try {
    switch (mode) {
      case 0: {
        const std::string s = r.read_string();
        if (s.size() > body.size()) __builtin_trap();  // length prefix escaped its bound
        break;
      }
      case 1: {
        const std::vector<ULong> v = r.read_prim_seq<ULong>();
        if (v.size() * sizeof(ULong) > body.size()) __builtin_trap();
        break;
      }
      case 2: {
        std::vector<std::string> v;
        CdrTraits<std::vector<std::string>>::unmarshal(r, v);
        if (v.size() > body.size()) __builtin_trap();
        break;
      }
      case 3: {
        // Nested sequences: the decode-depth budget is the defense
        // against a recursion bomb a few dozen bytes long.
        std::vector<std::vector<std::vector<ULong>>> v;
        CdrTraits<std::vector<std::vector<std::vector<ULong>>>>::unmarshal(r, v);
        break;
      }
      case 4: {
        // Primitive soup: alignment skips + every fixed-width read.
        (void)r.read_octet();
        (void)r.read_short();
        (void)r.read_ulong();
        (void)r.read_double();
        (void)r.read_ulonglong();
        (void)r.read_string();
        break;
      }
      default: {
        const ULong n = r.read_ulong();
        (void)r.read_bytes(n);
        r.trim(1);
        (void)r.rest();
        break;
      }
    }
  } catch (const SystemException&) {
    // Rejecting hostile input is the contract.
  }
  return 0;
}
