// pardis-lint: structural thread-safety and wire-discipline lint.
//
// The IDL linter (src/idl/lint.cpp, PL0xx) checks what the IDL
// *language* allows but the runtime cannot honor; this tool checks
// what *C++* allows but the PARDIS concurrency and wire disciplines
// forbid. It is deliberately a heuristic, text-level analysis — no
// compiler front end — tuned so that every rule is either precise
// enough to run under --werror in CI or suppressible at the site with
// a justified allow comment:
//
//     // pardis-lint: allow(<rule-tag>) <why>
//
// on the flagged line or one of the three lines above it.
//
//   PT001  blocking primitive reachable from a comm/pump entry point
//          (tag: blocking). Entry points are the functions that run on
//          message-delivery paths and must never block: ClientCtx::pump
//          (the client progress engine), Endpoint::enqueue + the
//          delivery-filter halves SessionTransport::on_session_data /
//          on_session_ack (producer-thread delivery), and
//          CommSender::run (the comm thread's dispatch loop). The rule
//          builds a name-level call graph over every function defined
//          in the scanned .cpp files and walks it from those entries;
//          any reachable use of sleep_for/sleep_until, a cv/endpoint
//          wait family member call, or a blocking socket syscall is a
//          finding, reported with one call path that reaches it.
//   PT002  wire constant declared outside the registry (tag:
//          wire-constant). Every PIOP tag, header flag, reply-status
//          bit, handler id and announce magic lives in core/wire.hpp
//          ONLY — a constant declared anywhere else can silently
//          collide with the registry and corrupt the wire format.
//   PT003  raw std::mutex declaration (tag: raw-mutex). Raw members
//          are invisible to both clang Thread Safety Analysis and the
//          pardis_check lock-order detector; declare pardis::Mutex.
//   PT004  pardis::Mutex with no thread-safety annotation referencing
//          it (tag: unannotated-mutex). A mutex nothing is
//          PARDIS_GUARDED_BY / PARDIS_REQUIRES-tied to protects
//          nothing the analysis can see.
//
// Output follows the PL-code conventions: `file:line:col: severity:
// message [PTxxx]` text (the gcc/clang format editors parse) or a
// `--json` array of {code, severity, file, line, column, message}.
// Exit status is 0 when clean, 1 on findings under --werror (or on
// usage/IO errors), matching idl::lint_failed semantics.

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// --- diagnostics (PL-style) ------------------------------------------------

struct Diagnostic {
  std::string code;  ///< stable "PTxxx" identifier
  std::string file;
  int line = 0;
  int column = 1;
  std::string message;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += ' ';
        else
          out += c;
    }
  }
  return out;
}

void render_text(const std::vector<Diagnostic>& diags, std::ostream& os) {
  for (const Diagnostic& d : diags)
    os << d.file << ":" << d.line << ":" << d.column << ": warning: " << d.message << " ["
       << d.code << "]\n";
}

void render_json(const std::vector<Diagnostic>& diags, std::ostream& os) {
  os << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i != 0) os << ",";
    os << "\n  {\"code\":\"" << d.code << "\",\"severity\":\"warning\",\"file\":\""
       << json_escape(d.file) << "\",\"line\":" << d.line << ",\"column\":" << d.column
       << ",\"message\":\"" << json_escape(d.message) << "\"}";
  }
  os << (diags.empty() ? "]\n" : "\n]\n");
}

// --- source model ----------------------------------------------------------

struct SourceFile {
  std::string path;                ///< as reported in diagnostics
  std::vector<std::string> lines;  ///< raw, 0-based
  std::vector<std::string> code;   ///< comments blanked out, 0-based
};

/// Blanks // and /* */ comments (and string/char literals) so rule
/// patterns never match inside them, preserving line structure and
/// column positions. Raw lines keep the comments: allow comments are
/// looked up there.
std::vector<std::string> strip_comments(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block = false;
  for (const std::string& line : lines) {
    std::string o = line;
    bool in_str = false, in_chr = false;
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (in_block) {
        if (o[i] == '*' && i + 1 < o.size() && o[i + 1] == '/') {
          o[i] = o[i + 1] = ' ';
          ++i;
          in_block = false;
        } else {
          o[i] = ' ';
        }
      } else if (in_str) {
        if (o[i] == '\\' && i + 1 < o.size()) {
          o[i] = o[i + 1] = ' ';
          ++i;
        } else if (o[i] == '"') {
          in_str = false;
        } else {
          o[i] = ' ';
        }
      } else if (in_chr) {
        if (o[i] == '\\' && i + 1 < o.size()) {
          o[i] = o[i + 1] = ' ';
          ++i;
        } else if (o[i] == '\'') {
          in_chr = false;
        } else {
          o[i] = ' ';
        }
      } else if (o[i] == '/' && i + 1 < o.size() && o[i + 1] == '/') {
        for (std::size_t j = i; j < o.size(); ++j) o[j] = ' ';
        break;
      } else if (o[i] == '/' && i + 1 < o.size() && o[i + 1] == '*') {
        o[i] = o[i + 1] = ' ';
        ++i;
        in_block = true;
      } else if (o[i] == '"') {
        in_str = true;
      } else if (o[i] == '\'') {
        // Heuristic: treat ' as a char literal only when it opens one
        // (digit separators like 0x4000'0000 never start after a
        // non-identifier character followed by a quote-close pattern).
        bool literal = i == 0 || !(std::isalnum(static_cast<unsigned char>(o[i - 1])) ||
                                   o[i - 1] == '_');
        if (literal) in_chr = true;
      }
    }
    out.push_back(std::move(o));
  }
  return out;
}

std::optional<SourceFile> load(const fs::path& p, const std::string& report_as) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  SourceFile f;
  f.path = report_as;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.lines.push_back(line);
  }
  f.code = strip_comments(f.lines);
  return f;
}

/// allow(<tag>) on `line0` (0-based) or the three lines above it.
bool allowed(const SourceFile& f, std::size_t line0, const std::string& tag) {
  const std::string needle = "pardis-lint: allow(" + tag + ")";
  const std::size_t lo = line0 >= 3 ? line0 - 3 : 0;
  for (std::size_t i = lo; i <= line0 && i < f.lines.size(); ++i)
    if (f.lines[i].find(needle) != std::string::npos) return true;
  return false;
}

// --- PT002: wire constants outside the registry ----------------------------

const std::regex kWireConstRe(
    R"(\bconstexpr\b[^=;]*\b(k(?:Tag|Flag|ReplyFlag|Handler|Sched|Announce|Reserved|RepoOp)[A-Z]\w*)\s*=)");
const std::regex kRepoOpRe(R"(\benum\s+class\s+RepoOp\b)");

void check_wire_constants(const SourceFile& f, std::vector<Diagnostic>& diags) {
  if (f.path.find("core/wire.hpp") != std::string::npos) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(f.code[i], m, kWireConstRe)) {
      if (allowed(f, i, "wire-constant")) continue;
      diags.push_back({"PT002", f.path, static_cast<int>(i + 1),
                       static_cast<int>(m.position(1) + 1),
                       "wire constant '" + m.str(1) +
                           "' declared outside the registry; add it to core/wire.hpp "
                           "(single declaration point, collision static_asserts)"});
    } else if (std::regex_search(f.code[i], m, kRepoOpRe)) {
      if (allowed(f, i, "wire-constant")) continue;
      diags.push_back({"PT002", f.path, static_cast<int>(i + 1),
                       static_cast<int>(m.position(0) + 1),
                       "RepoOp (repository wire operations) declared outside the "
                       "registry; it lives in core/wire.hpp"});
    }
  }
}

// --- PT003: raw std::mutex declarations ------------------------------------

const std::regex kRawMutexRe(R"((?:^|[^\w])(std::(?:recursive_|timed_|shared_)?mutex)\s+[A-Za-z_])");

void check_raw_mutex(const SourceFile& f, std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.code[i], m, kRawMutexRe)) continue;
    if (allowed(f, i, "raw-mutex")) continue;
    diags.push_back({"PT003", f.path, static_cast<int>(i + 1),
                     static_cast<int>(m.position(1) + 1),
                     "raw " + m.str(1) +
                         " declaration: invisible to thread-safety analysis and the "
                         "lock-order detector; declare pardis::Mutex (common/mutex.hpp)"});
  }
}

// --- PT004: pardis::Mutex with no annotation referencing it ----------------

const std::regex kPardisMutexRe(R"((?:^|[^\w:])(?:mutable\s+)?Mutex\s+([A-Za-z_]\w*)\s*[{;=])");

void check_unannotated_mutex(const SourceFile& f, std::vector<Diagnostic>& diags) {
  if (f.path.find("common/mutex.hpp") != std::string::npos) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.code[i], m, kPardisMutexRe)) continue;
    const std::string name = m.str(1);
    // Any PARDIS_* annotation in the file naming this mutex counts
    // (file scope, not class scope: a heuristic, but mutex names are
    // distinctive enough in practice).
    const std::regex ref("PARDIS_[A-Z_]+\\s*\\([^)]*\\b" + name + "\\b");
    bool referenced = false;
    for (const std::string& line : f.code)
      if (std::regex_search(line, ref)) {
        referenced = true;
        break;
      }
    if (referenced) continue;
    if (allowed(f, i, "unannotated-mutex")) continue;
    diags.push_back({"PT004", f.path, static_cast<int>(i + 1),
                     static_cast<int>(m.position(1) + 1),
                     "Mutex '" + name +
                         "' has no PARDIS_GUARDED_BY/PARDIS_REQUIRES annotation "
                         "referencing it; tie it to the state it guards"});
  }
}

// --- PT001: blocking primitives reachable from pump entries ----------------

struct Function {
  std::string qual;   ///< as written, e.g. "ClientCtx::pump"
  std::string name;   ///< last component, e.g. "pump"
  const SourceFile* file = nullptr;
  std::size_t def_line = 0;  ///< 0-based
  std::set<std::string> callees;
  struct BlockingUse {
    std::size_t line0;
    std::string what;
  };
  std::vector<BlockingUse> blocking;
};

/// Function-definition head: at column 0 in a .cpp, a (possibly
/// qualified) identifier followed by '(' on a line that is not a
/// control statement, declaration (ends in ';' before a brace opens)
/// or macro.
const std::regex kDefRe(
    R"(^[A-Za-z_][\w:<>,*&~\s\[\]]*?\b((?:[A-Za-z_]\w*::)*(?:~?[A-Za-z_]\w*|operator\(\)))\s*\()");

const char* const kKeywords[] = {"if",     "for",    "while",  "switch", "return",
                                 "sizeof", "catch",  "throw",  "new",    "delete",
                                 "static", "assert", "defined"};

bool is_keyword(const std::string& s) {
  for (const char* k : kKeywords)
    if (s == k) return true;
  return false;
}

const std::regex kCallRe(R"(\b([A-Za-z_]\w*)\s*\()");

/// Blocking-family member names are matched directly as blocking
/// tokens at the call site, so they are NOT call-graph edges: treating
/// `cv_.wait(lock)` as a call of every function named `wait` would
/// drag unrelated definitions (PendingReply::wait, Endpoint::wait)
/// into the reachable set through pure name collision.
const char* const kBlockingLeafNames[] = {"wait",      "wait_for",   "wait_until",
                                          "recv",      "sleep_for",  "sleep_until"};

bool is_blocking_leaf(const std::string& s) {
  for (const char* k : kBlockingLeafNames)
    if (s == k) return true;
  return false;
}

struct BlockingPattern {
  std::regex re;
  const char* what;
};

const BlockingPattern kBlockingPatterns[] = {
    {std::regex(R"(\bsleep_for\s*\()"), "sleep_for"},
    {std::regex(R"(\bsleep_until\s*\()"), "sleep_until"},
    {std::regex(R"([.>]\s*wait\s*\()"), "condition wait"},
    {std::regex(R"([.>]\s*wait_for\s*\()"), "bounded wait (wait_for)"},
    {std::regex(R"([.>]\s*wait_until\s*\()"), "bounded wait (wait_until)"},
    {std::regex(R"([.>]\s*recv\s*\()"), "blocking recv"},
    {std::regex(R"(::\s*recv(?:from)?\s*\()"), "blocking socket read"},
    {std::regex(R"(::\s*accept\s*\()"), "blocking accept"},
    {std::regex(R"(::\s*connect\s*\()"), "blocking connect"},
    {std::regex(R"(::\s*poll\s*\()"), "blocking ::poll"},
    {std::regex(R"(::\s*fsync\s*\()"), "blocking fsync"},
    {std::regex(R"(::\s*fdatasync\s*\()"), "blocking fdatasync"},
};

/// The functions that run on message-delivery / progress-engine paths.
/// Matched as a suffix of the qualified definition name.
const char* const kEntryPoints[] = {
    "ClientCtx::pump",                 // client progress engine (poll-only)
    "Endpoint::enqueue",               // producer-thread delivery
    "SessionTransport::on_session_data",  // delivery filter (producer thread)
    "SessionTransport::on_session_ack",   // delivery filter (producer thread)
    "CommSender::run",                 // comm-thread dispatch loop
    "Log::append",                     // WAL enqueue on the dispatch path
                                       // (fsyncs belong to the flusher alone)
    "EventLoop::run",                  // reactor loop: epoll_wait is the
                                       // only sleep it may ever take
};

bool qual_matches_entry(const std::string& qual) {
  for (const char* e : kEntryPoints) {
    const std::size_t n = std::strlen(e);
    if (qual.size() < n) continue;
    if (qual.compare(qual.size() - n, n, e) != 0) continue;
    if (qual.size() == n || qual[qual.size() - n - 1] == ':') return true;
  }
  return false;
}

std::vector<Function> extract_functions(const SourceFile& f) {
  std::vector<Function> fns;
  std::size_t i = 0;
  while (i < f.code.size()) {
    const std::string& line = f.code[i];
    std::smatch m;
    if (line.empty() || std::isspace(static_cast<unsigned char>(line[0])) ||
        line[0] == '#' || line[0] == '}' ||
        !std::regex_search(line, m, kDefRe) || is_keyword(m.str(1))) {
      ++i;
      continue;
    }
    // Find the body: scan forward for '{' before any ';' at depth 0 of
    // parens (a ';' first means declaration, not definition).
    int paren = 0;
    bool found_body = false, is_decl = false;
    std::size_t j = i;
    std::size_t body_open_line = i;
    for (; j < f.code.size() && j < i + 16; ++j) {
      for (char c : f.code[j]) {
        if (c == '(') ++paren;
        else if (c == ')') --paren;
        else if (c == '{' && paren == 0) {
          found_body = true;
          body_open_line = j;
          break;
        } else if (c == ';' && paren == 0) {
          is_decl = true;
          break;
        }
      }
      if (found_body || is_decl) break;
    }
    if (!found_body || is_decl) {
      ++i;
      continue;
    }
    // Body spans from the '{' line to the line where brace depth
    // returns to zero.
    int depth = 0;
    std::size_t end = body_open_line;
    for (std::size_t k = body_open_line; k < f.code.size(); ++k) {
      for (char c : f.code[k]) {
        if (c == '{') ++depth;
        else if (c == '}') --depth;
      }
      if (depth <= 0) {
        end = k;
        break;
      }
      end = k;
    }

    Function fn;
    fn.qual = m.str(1);
    const std::size_t pos = fn.qual.rfind("::");
    fn.name = pos == std::string::npos ? fn.qual : fn.qual.substr(pos + 2);
    fn.file = &f;
    fn.def_line = i;
    for (std::size_t k = body_open_line; k <= end; ++k) {
      std::string body = f.code[k];
      // The definition head names the function itself — `void
      // CommSender::run() {` must not make every `run` definition in
      // the tree a callee. Blank the defined name out of the head line.
      if (k == i) {
        const auto at = static_cast<std::size_t>(m.position(1));
        const auto len = static_cast<std::size_t>(m.length(1));
        for (std::size_t p = at; p < at + len && p < body.size(); ++p) body[p] = ' ';
      }
      for (auto it = std::sregex_iterator(body.begin(), body.end(), kCallRe);
           it != std::sregex_iterator(); ++it) {
        const std::string callee = (*it).str(1);
        if (!is_keyword(callee) && !is_blocking_leaf(callee)) fn.callees.insert(callee);
      }
      if (k == i) continue;  // nor is the head's parameter list a blocking use
      for (const BlockingPattern& bp : kBlockingPatterns)
        if (std::regex_search(body, bp.re)) fn.blocking.push_back({k, bp.what});
    }
    fns.push_back(std::move(fn));
    i = end + 1;
  }
  return fns;
}

void check_blocking_reachability(const std::vector<SourceFile>& files,
                                 std::vector<Diagnostic>& diags) {
  std::vector<Function> fns;
  for (const SourceFile& f : files) {
    if (f.path.size() < 4 || f.path.compare(f.path.size() - 4, 4, ".cpp") != 0) continue;
    auto extracted = extract_functions(f);
    fns.insert(fns.end(), std::make_move_iterator(extracted.begin()),
               std::make_move_iterator(extracted.end()));
  }
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < fns.size(); ++i) by_name[fns[i].name].push_back(i);

  // BFS from each entry point independently so the reported path names
  // the entry it starts from.
  for (std::size_t e = 0; e < fns.size(); ++e) {
    if (!qual_matches_entry(fns[e].qual)) continue;
    std::vector<int> parent(fns.size(), -2);  // -2 unvisited, -1 root
    std::vector<std::size_t> queue{e};
    parent[e] = -1;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const Function& fn = fns[queue[qi]];
      for (const std::string& callee : fn.callees) {
        auto it = by_name.find(callee);
        if (it == by_name.end()) continue;
        for (std::size_t t : it->second) {
          if (parent[t] != -2) continue;
          parent[t] = static_cast<int>(queue[qi]);
          queue.push_back(t);
        }
      }
    }
    for (std::size_t n : queue) {
      const Function& fn = fns[n];
      for (const Function::BlockingUse& use : fn.blocking) {
        if (allowed(*fn.file, use.line0, "blocking")) continue;
        std::string path = fn.qual;
        for (int p = parent[n]; p >= 0; p = parent[p]) path = fns[p].qual + " -> " + path;
        if (parent[n] == -1) path = fn.qual;  // the entry itself blocks
        diags.push_back({"PT001", fn.file->path, static_cast<int>(use.line0 + 1), 1,
                         use.what + " reachable from pump entry '" + fns[e].qual +
                             "' via " + path +
                             "; delivery paths must not block (poll, hand off, or "
                             "justify with an allow comment)"});
      }
    }
  }

  // One finding per site even when several entries reach it: keep the
  // first (entry order) and drop duplicates.
  std::set<std::pair<std::string, int>> seen;
  std::vector<Diagnostic> unique;
  for (Diagnostic& d : diags) {
    if (d.code == "PT001") {
      if (!seen.insert({d.file, d.line}).second) continue;
    }
    unique.push_back(std::move(d));
  }
  diags = std::move(unique);
}

// --- driver ----------------------------------------------------------------

int usage() {
  std::cerr << "usage: pardis-lint [--json] [--werror] <dir-or-file>...\n"
               "  scans .hpp/.cpp files for PT001-PT004 (see source header)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, werror = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<SourceFile> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      std::vector<std::string> paths;
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
        paths.push_back(entry.path().generic_string());
      }
      std::sort(paths.begin(), paths.end());
      for (const std::string& p : paths) {
        if (auto f = load(p, p)) files.push_back(std::move(*f));
      }
    } else if (fs::is_regular_file(root, ec)) {
      if (auto f = load(root, root)) {
        files.push_back(std::move(*f));
      } else {
        std::cerr << "pardis-lint: cannot read " << root << "\n";
        return 1;
      }
    } else {
      std::cerr << "pardis-lint: no such file or directory: " << root << "\n";
      return 1;
    }
  }

  std::vector<Diagnostic> diags;
  for (const SourceFile& f : files) {
    check_wire_constants(f, diags);
    check_raw_mutex(f, diags);
    check_unannotated_mutex(f, diags);
  }
  check_blocking_reachability(files, diags);

  std::stable_sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.column != b.column) return a.column < b.column;
    return a.code < b.code;
  });

  if (json)
    render_json(diags, std::cout);
  else
    render_text(diags, std::cout);

  return (!diags.empty() && werror) ? 1 : 0;
}
